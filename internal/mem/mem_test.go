package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestPhysicalZeroFill(t *testing.T) {
	p := NewPhysical()
	if p.Read8(0x1234) != 0 {
		t.Fatal("unbacked memory should read zero")
	}
	if p.Read64(0xffff8) != 0 {
		t.Fatal("unbacked word should read zero")
	}
	if p.FrameCount() != 0 {
		t.Fatal("reads must not allocate frames")
	}
}

func TestPhysicalReadWrite64(t *testing.T) {
	p := NewPhysical()
	p.Write64(0x1000, 0x1122334455667788)
	if got := p.Read64(0x1000); got != 0x1122334455667788 {
		t.Fatalf("Read64 = %#x", got)
	}
	// Little-endian byte order.
	if p.Read8(0x1000) != 0x88 || p.Read8(0x1007) != 0x11 {
		t.Fatal("byte order wrong")
	}
}

func TestPhysicalCrossPageAccess(t *testing.T) {
	p := NewPhysical()
	a := Addr(PageBytes - 4)
	p.Write64(a, 0xa1b2c3d4e5f60718)
	if got := p.Read64(a); got != 0xa1b2c3d4e5f60718 {
		t.Fatalf("cross-page Read64 = %#x", got)
	}
	if p.FrameCount() != 2 {
		t.Fatalf("FrameCount = %d, want 2", p.FrameCount())
	}
}

func TestPhysicalBytesRoundTrip(t *testing.T) {
	p := NewPhysical()
	in := []byte{1, 2, 3, 4, 5}
	p.WriteData(0x2000, in)
	out := p.ReadData(0x2000, 5)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("ReadData = %v", out)
		}
	}
}

func TestPhysicalWord64Property(t *testing.T) {
	f := func(addr uint32, v uint64) bool {
		p := NewPhysical()
		a := Addr(addr)
		p.Write64(a, v)
		return p.Read64(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(Addr(0x1043)) != 0x1040 {
		t.Fatalf("LineAddr = %#x", LineAddr(Addr(0x1043)))
	}
	if LineAddr(VAddr(63)) != 0 {
		t.Fatal("LineAddr(63) should be 0")
	}
	if LineAddr(VAddr(64)) != 64 {
		t.Fatal("LineAddr(64) should be 64")
	}
}

func TestPageAndFrameNum(t *testing.T) {
	if PageNum(VAddr(0x3456)) != 3 {
		t.Fatalf("PageNum = %d", PageNum(VAddr(0x3456)))
	}
	if FrameNum(Addr(0x3456)) != 3 {
		t.Fatalf("FrameNum = %d", FrameNum(Addr(0x3456)))
	}
}

func TestDRAMRowHitFasterThanMiss(t *testing.T) {
	s := event.NewScheduler()
	d := NewDRAM(s, DefaultDRAMConfig())
	first := d.Access(0x0)
	if first != event.Cycle(DefaultDRAMConfig().RowMissLatency) {
		t.Fatalf("first access latency = %d, want row miss %d", first, DefaultDRAMConfig().RowMissLatency)
	}
	// Access to the same row but a different line in the same bank:
	// bank is line-interleaved so add Banks*LineBytes to stay in bank 0.
	cfg := DefaultDRAMConfig()
	a2 := Addr(uint64(cfg.Banks) * LineBytes)
	done2 := d.Access(a2)
	// The second access starts when bank 0 frees, then takes a row hit.
	want := first + cfg.RowHitLatency
	if done2 != want {
		t.Fatalf("second access done = %d, want %d", done2, want)
	}
	if d.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1", d.RowHits)
	}
}

func TestDRAMBankParallelism(t *testing.T) {
	s := event.NewScheduler()
	cfg := DefaultDRAMConfig()
	d := NewDRAM(s, cfg)
	// Two accesses to different banks overlap except for the burst gap.
	d1 := d.Access(0)
	d2 := d.Access(LineBytes) // next line, different bank
	if d2 >= d1+cfg.RowMissLatency {
		t.Fatalf("different banks did not overlap: d1=%d d2=%d", d1, d2)
	}
	if d2 != cfg.BurstGap+cfg.RowMissLatency {
		t.Fatalf("d2 = %d, want %d", d2, cfg.BurstGap+cfg.RowMissLatency)
	}
}

func TestDRAMRowConflictEvictsRow(t *testing.T) {
	s := event.NewScheduler()
	cfg := DefaultDRAMConfig()
	d := NewDRAM(s, cfg)
	d.Access(0)
	// Same bank, different row.
	other := Addr(cfg.RowBytes * uint64(cfg.Banks))
	if d.bankOf(other) != d.bankOf(0) {
		t.Fatal("test setup: expected same bank")
	}
	d.Access(other)
	// Back to row 0: should be a miss again.
	before := d.RowHits
	d.Access(0)
	if d.RowHits != before {
		t.Fatal("row should have been closed by conflicting access")
	}
}

func TestDRAMRowHitRate(t *testing.T) {
	s := event.NewScheduler()
	d := NewDRAM(s, DefaultDRAMConfig())
	if d.RowHitRate() != 0 {
		t.Fatal("empty DRAM should report 0 hit rate")
	}
	d.Access(0)
	d.Access(Addr(uint64(DefaultDRAMConfig().Banks) * LineBytes))
	if d.RowHitRate() != 0.5 {
		t.Fatalf("RowHitRate = %v, want 0.5", d.RowHitRate())
	}
}
