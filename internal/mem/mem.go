package mem

import "encoding/binary"

// Addr is a physical byte address.
type Addr uint64

// VAddr is a virtual byte address.
type VAddr uint64

// Layout constants shared by the whole hierarchy.
const (
	LineBytes = 64 // cache-line size at every level (paper §4.1)
	LineShift = 6
	PageBytes = 4096
	PageShift = 12
)

// LineAddr returns the address of the cache line containing a.
func LineAddr[T ~uint64](a T) T { return a &^ (LineBytes - 1) }

// PageNum returns the page number of a virtual address.
func PageNum(a VAddr) uint64 { return uint64(a) >> PageShift }

// FrameNum returns the frame number of a physical address.
func FrameNum(a Addr) uint64 { return uint64(a) >> PageShift }

// Physical is the machine's physical memory: a sparse set of 4KiB frames.
// Reads of unbacked memory return zeroes; writes allocate frames on demand.
type Physical struct {
	frames map[uint64]*[PageBytes]byte
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical {
	return &Physical{frames: make(map[uint64]*[PageBytes]byte)}
}

func (p *Physical) frame(a Addr, alloc bool) *[PageBytes]byte {
	fn := FrameNum(a)
	f := p.frames[fn]
	if f == nil && alloc {
		f = new([PageBytes]byte)
		p.frames[fn] = f
	}
	return f
}

// Read8 reads one byte of physical memory.
func (p *Physical) Read8(a Addr) byte {
	f := p.frame(a, false)
	if f == nil {
		return 0
	}
	return f[uint64(a)%PageBytes]
}

// Write8 writes one byte of physical memory.
func (p *Physical) Write8(a Addr, v byte) {
	p.frame(a, true)[uint64(a)%PageBytes] = v
}

// Read64 reads a little-endian 64-bit word. The access may straddle a
// frame boundary.
func (p *Physical) Read64(a Addr) uint64 {
	if uint64(a)%PageBytes <= PageBytes-8 {
		f := p.frame(a, false)
		if f == nil {
			return 0
		}
		off := uint64(a) % PageBytes
		return binary.LittleEndian.Uint64(f[off : off+8])
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p.Read8(a+Addr(i))) << (8 * i)
	}
	return v
}

// Write64 writes a little-endian 64-bit word.
func (p *Physical) Write64(a Addr, v uint64) {
	if uint64(a)%PageBytes <= PageBytes-8 {
		f := p.frame(a, true)
		off := uint64(a) % PageBytes
		binary.LittleEndian.PutUint64(f[off:off+8], v)
		return
	}
	for i := 0; i < 8; i++ {
		p.Write8(a+Addr(i), byte(v>>(8*i)))
	}
}

// WriteData copies b into physical memory starting at a.
func (p *Physical) WriteData(a Addr, b []byte) {
	for i, v := range b {
		p.Write8(a+Addr(i), v)
	}
}

// ReadData copies n bytes starting at a into a fresh slice.
func (p *Physical) ReadData(a Addr, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = p.Read8(a + Addr(i))
	}
	return out
}

// FrameCount reports how many frames have been touched (for tests).
func (p *Physical) FrameCount() int { return len(p.frames) }
