package mem

import "repro/internal/event"

// DRAMConfig models a DDR3-1600 11-11-11 part as seen from a 2GHz core
// (paper Table 1). Latencies are in core cycles.
type DRAMConfig struct {
	// RowHitLatency is the access latency when the request hits the
	// currently open row of its bank.
	RowHitLatency event.Cycle
	// RowMissLatency is the access latency when the bank must precharge
	// and activate a new row.
	RowMissLatency event.Cycle
	// Banks is the number of independent DRAM banks.
	Banks int
	// BurstGap is the minimum data-bus gap between bursts, limiting
	// bandwidth across all banks.
	BurstGap event.Cycle
	// RowBytes is the size of a DRAM row per bank.
	RowBytes uint64
}

// DefaultDRAMConfig corresponds to DDR3-1600 11-11-11-28 at 800MHz driving
// a 2GHz core: tCAS ≈ 13.75ns ≈ 28 core cycles; a full
// precharge+activate+CAS row miss ≈ 41ns ≈ 83 core cycles; 8 banks; one
// 64-byte burst every 5ns ≈ 10 core cycles of data bus occupancy.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		RowHitLatency:  28,
		RowMissLatency: 83,
		Banks:          8,
		BurstGap:       10,
		RowBytes:       8192,
	}
}

// DRAM is a bank-aware open-row latency model. It is intentionally simpler
// than a full DDR controller: per-bank open-row tracking plus a shared
// data-bus serialisation constraint capture the first-order queueing and
// locality behaviour the evaluation needs.
type DRAM struct {
	cfg      DRAMConfig
	sched    *event.Scheduler
	openRow  []uint64
	hasRow   []bool
	bankFree []event.Cycle
	busFree  event.Cycle

	// Stats
	Accesses uint64
	RowHits  uint64
}

// NewDRAM builds a DRAM model on the given scheduler.
func NewDRAM(sched *event.Scheduler, cfg DRAMConfig) *DRAM {
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	return &DRAM{
		cfg:      cfg,
		sched:    sched,
		openRow:  make([]uint64, cfg.Banks),
		hasRow:   make([]bool, cfg.Banks),
		bankFree: make([]event.Cycle, cfg.Banks),
	}
}

func (d *DRAM) bankOf(a Addr) int {
	// Interleave banks on line granularity.
	return int(uint64(a) >> LineShift % uint64(d.cfg.Banks))
}

func (d *DRAM) rowOf(a Addr) uint64 {
	return uint64(a) / d.cfg.RowBytes
}

// Access issues a line read or write to DRAM and returns the cycle at which
// the data is available. Timing state (open rows, bank/bus occupancy) is
// updated; the caller schedules its own completion event.
func (d *DRAM) Access(a Addr) event.Cycle {
	d.Accesses++
	now := d.sched.Now()
	bank := d.bankOf(a)
	row := d.rowOf(a)

	start := now
	if d.bankFree[bank] > start {
		start = d.bankFree[bank]
	}
	if d.busFree > start {
		start = d.busFree
	}

	var lat event.Cycle
	if d.hasRow[bank] && d.openRow[bank] == row {
		lat = d.cfg.RowHitLatency
		d.RowHits++
	} else {
		lat = d.cfg.RowMissLatency
		d.openRow[bank] = row
		d.hasRow[bank] = true
	}

	done := start + lat
	d.bankFree[bank] = done
	d.busFree = start + d.cfg.BurstGap
	return done
}

// RowHitRate reports the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}
