package simtest

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// MustSpec looks a workload up in the registry, failing the test when it
// is missing.
func MustSpec(tb testing.TB, name string) workload.Spec {
	tb.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		tb.Fatalf("workload %s missing", name)
	}
	return spec
}

// WarmSystem builds a default 1-core machine running the named workload
// and architecturally fast-forwards it insts instructions.
func WarmSystem(tb testing.TB, name string, scale float64, insts int) *sim.System {
	tb.Helper()
	spec := MustSpec(tb, name)
	s := sim.New(sim.DefaultConfig(1))
	p := s.NewProcess(workload.Build(spec, scale))
	s.RunOn(0, p, 0)
	if got := s.Warmup(insts); got != insts {
		tb.Fatalf("warm-up executed %d insts, want %d", got, insts)
	}
	return s
}

// CountersEqual asserts two counter sets are identical: same keys, same
// values. The label prefixes failures so table-driven callers stay
// readable.
func CountersEqual(tb testing.TB, label string, a, b map[string]uint64) {
	tb.Helper()
	if len(a) != len(b) {
		tb.Fatalf("%s: counter sets differ: %d vs %d", label, len(a), len(b))
	}
	for k, v := range a {
		if got, ok := b[k]; !ok || got != v {
			tb.Fatalf("%s: counter %s: %d vs %d", label, k, v, got)
		}
	}
}

// ResultsEqual asserts two runs agree bit-for-bit: cycles, committed
// instructions and every statistics counter.
func ResultsEqual(tb testing.TB, label string, a, b sim.RunResult) {
	tb.Helper()
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		tb.Fatalf("%s: %d cycles / %d committed vs %d / %d",
			label, a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
	CountersEqual(tb, label, a.Counters, b.Counters)
}
