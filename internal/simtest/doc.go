// Package simtest provides the run-and-compare helpers shared by the
// simulator's test suites: architecturally warming a machine, and
// asserting two runs agree bit-for-bit on cycles, instructions and
// every statistics counter. The golden, snapshot-fork and differential
// checkpoint suites all build on it, so "two runs are identical" means
// exactly one thing everywhere. (The canonical machine *builder* lives
// in the production figure harness — figures.BuildSystem — so test
// support never sits in a shipped dependency path.)
package simtest
