//go:build !race

package simtest

// RaceEnabled reports whether the binary was built with the race
// detector. Exhaustive differential suites use it to trim their matrix
// under -race: the detector multiplies single-threaded simulation cost
// several-fold while adding nothing over the non-race run of the same
// cells, so the race job runs a representative subset instead.
const RaceEnabled = false
