//go:build race

package simtest

// RaceEnabled reports whether the binary was built with the race
// detector; see race_off.go.
const RaceEnabled = true
