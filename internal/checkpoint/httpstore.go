package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// This file makes the content-addressed snapshot store network-reachable:
// StoreHandler serves an on-disk Store over HTTP, HTTPStore is the
// matching client, and Mirror composes a local store with a remote one so
// a machine's mid-run checkpoints are simultaneously resumable locally
// and fetchable by any other machine in a fleet. The keying discipline is
// exactly the on-disk store's — content hashes for snapshots, opaque
// input keys for refs — so a checkpoint chain written through a Mirror on
// one worker resolves, unchanged, through an HTTPStore on another.

// ContentStore is the snapshot store contract shared by the on-disk
// Store, the HTTPStore client and the Mirror composition: content-hashed
// snapshot blobs plus input-key refs resolving to them. Remove and
// Unlink are best-effort by contract (pruning must never fail a run).
type ContentStore interface {
	// Put writes the snapshot under its content hash and returns the hash.
	Put(s *Snapshot) (string, error)
	// Load reads and verifies the snapshot with the given content hash.
	Load(hash string) (*Snapshot, error)
	// Remove deletes the snapshot with the given content hash, if present.
	Remove(hash string)
	// Link records that the input key produced the snapshot with the hash.
	Link(key, hash string) error
	// Unlink removes the ref recorded for an input key, if present.
	Unlink(key string)
	// Resolve returns the content hash previously linked to the input key.
	Resolve(key string) (string, bool)
}

// Compile-time checks: every store flavor speaks the same contract.
var (
	_ ContentStore = (*Store)(nil)
	_ ContentStore = (*HTTPStore)(nil)
	_ ContentStore = (*Mirror)(nil)
)

// validHash reports whether s has the exact shape a content hash has: 64
// lowercase hex digits. The HTTP surface takes hashes from URLs, so
// anything else must be rejected before a path or filename is built.
func validHash(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// StoreHandler serves st over HTTP. Mount it under a prefix with
// http.StripPrefix; HTTPStore with the same base URL is the client.
//
//	GET    /snap/{hash}   snapshot bytes            → 200 | 404
//	PUT    /snap/{hash}   store snapshot (verified) → 204 | 400
//	DELETE /snap/{hash}   prune snapshot            → 204
//	GET    /ref?key=K     resolve ref               → 200 hash | 404
//	PUT    /ref?key=K     link ref (body = hash)    → 204 | 400
//	DELETE /ref?key=K     unlink ref                → 204
//
// A PUT snapshot is re-hashed server-side before it is stored: a client
// cannot poison the store with bytes that do not hash to the name they
// claim, so every fleet member can trust what it fetches.
func StoreHandler(st *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snap/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		if !validHash(hash) {
			http.Error(w, "malformed snapshot hash", http.StatusBadRequest)
			return
		}
		snap, err := st.Load(hash)
		if err != nil {
			http.Error(w, "unknown snapshot", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(snap.Encode())
	})
	mux.HandleFunc("PUT /snap/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		if !validHash(hash) {
			http.Error(w, "malformed snapshot hash", http.StatusBadRequest)
			return
		}
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
		if err != nil {
			http.Error(w, "reading snapshot body: "+err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := Decode(b)
		if err != nil {
			http.Error(w, "malformed snapshot: "+err.Error(), http.StatusBadRequest)
			return
		}
		got, err := st.Put(snap)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if got != hash {
			// The store now holds the content under its true hash; the
			// client's claimed name was a lie and must not be linkable.
			st.Remove(got)
			http.Error(w, fmt.Sprintf("content hashes to %s, not %s", got, hash), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /snap/{hash}", func(w http.ResponseWriter, r *http.Request) {
		if hash := r.PathValue("hash"); validHash(hash) {
			st.Remove(hash)
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /ref", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		hash, ok := st.Resolve(key)
		if key == "" || !ok {
			http.Error(w, "unknown ref", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		_, _ = io.WriteString(w, hash)
	})
	mux.HandleFunc("PUT /ref", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing ref key", http.StatusBadRequest)
			return
		}
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1024))
		if err != nil {
			http.Error(w, "reading ref body: "+err.Error(), http.StatusBadRequest)
			return
		}
		hash := strings.TrimSpace(string(b))
		if !validHash(hash) {
			http.Error(w, "ref body is not a content hash", http.StatusBadRequest)
			return
		}
		if err := st.Link(key, hash); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /ref", func(w http.ResponseWriter, r *http.Request) {
		if key := r.URL.Query().Get("key"); key != "" {
			st.Unlink(key)
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// maxSnapshotBytes bounds one uploaded snapshot (a full-machine image of
// the simulated system is a few MiB; 1 GiB is far beyond any legitimate
// encoding and merely stops a hostile peer exhausting memory).
const maxSnapshotBytes = 1 << 30

// HTTPStore is a ContentStore client for a StoreHandler served at a base
// URL (e.g. "http://coordinator:7077/fleet/v1/store"). It is safe for
// concurrent use. Fetches() counts snapshots actually downloaded, which
// lets tests prove a migrated cell really restored over the network.
type HTTPStore struct {
	base    string
	hc      *http.Client
	fetches atomic.Uint64
}

// NewHTTPStore builds a client for the store served at base; hc nil uses
// a dedicated client with a 30s timeout (store operations are bounded
// blob transfers, never streams).
func NewHTTPStore(base string, hc *http.Client) *HTTPStore {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPStore{base: strings.TrimRight(base, "/"), hc: hc}
}

// Fetches reports how many snapshots this client has downloaded.
func (h *HTTPStore) Fetches() uint64 { return h.fetches.Load() }

func (h *HTTPStore) refURL(key string) string {
	// The key is an opaque canonical string (it embeds '|', '=', '/'):
	// hex-encode rather than URL-encode so no middlebox re-normalizes it.
	return h.base + "/ref?key=" + hex.EncodeToString([]byte(key))
}

// do runs one request and returns the body for 2xx, an error otherwise.
func (h *HTTPStore) do(method, url string, body io.Reader) ([]byte, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("checkpoint: remote store %s %s: HTTP %d: %s",
			method, url, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return b, nil
}

// Put uploads the snapshot under its content hash.
func (h *HTTPStore) Put(s *Snapshot) (string, error) {
	enc := s.Encode()
	sum := sha256.Sum256(enc)
	hash := hex.EncodeToString(sum[:])
	if _, err := h.do(http.MethodPut, h.base+"/snap/"+hash, strings.NewReader(string(enc))); err != nil {
		return "", err
	}
	return hash, nil
}

// Load downloads and verifies the snapshot with the given content hash.
func (h *HTTPStore) Load(hash string) (*Snapshot, error) {
	b, err := h.do(http.MethodGet, h.base+"/snap/"+hash, nil)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(b)
	if got := hex.EncodeToString(sum[:]); got != hash {
		return nil, fmt.Errorf("checkpoint: remote store corruption: %s hashes to %s", hash, got)
	}
	h.fetches.Add(1)
	return Decode(b)
}

// Remove prunes the remote snapshot, best-effort.
func (h *HTTPStore) Remove(hash string) {
	_, _ = h.do(http.MethodDelete, h.base+"/snap/"+hash, nil)
}

// Link records the key → hash ref remotely.
func (h *HTTPStore) Link(key, hash string) error {
	_, err := h.do(http.MethodPut, h.refURL(key), strings.NewReader(hash))
	return err
}

// Unlink removes the remote ref, best-effort.
func (h *HTTPStore) Unlink(key string) {
	_, _ = h.do(http.MethodDelete, h.refURL(key), nil)
}

// Resolve fetches the content hash linked to the key.
func (h *HTTPStore) Resolve(key string) (string, bool) {
	b, err := h.do(http.MethodGet, h.refURL(key), nil)
	if err != nil {
		return "", false
	}
	hash := strings.TrimSpace(string(b))
	if !validHash(hash) {
		return "", false
	}
	return hash, true
}

// Mirror is a ContentStore that pairs a machine's local store with a
// remote (fleet-shared) one. Reads prefer local and fall back to the
// remote; writes land in both. Write ordering is chosen so observing a
// local artifact implies the remote one exists:
//
//   - Put writes local first, then remote — a snapshot is never
//     advertised anywhere before it is durable somewhere.
//   - Link writes remote first, then local — once a local ref resolves,
//     the same ref (and its snapshot) is already fetchable by every
//     other fleet member. A worker killed the instant after its local
//     ref landed has, by construction, already shipped the checkpoint.
//
// A write that fails on either side returns the error: the caller (the
// mid-run checkpoint sink) treats it as "this checkpoint did not
// persist" and says so loudly, because silently degrading to local-only
// durability would break exactly the migration the fleet exists for.
type Mirror struct {
	Local  ContentStore
	Remote ContentStore
}

// Put writes the snapshot locally, then remotely.
func (m *Mirror) Put(s *Snapshot) (string, error) {
	hash, err := m.Local.Put(s)
	if err != nil {
		return "", err
	}
	if _, err := m.Remote.Put(s); err != nil {
		return "", fmt.Errorf("mirror remote: %w", err)
	}
	return hash, nil
}

// Load reads locally, falling back to the remote store. A remote hit is
// backfilled into the local store, best-effort, so a resumed run's next
// checkpoint chain starts warm.
func (m *Mirror) Load(hash string) (*Snapshot, error) {
	if snap, err := m.Local.Load(hash); err == nil {
		return snap, nil
	}
	snap, err := m.Remote.Load(hash)
	if err != nil {
		return nil, err
	}
	_, _ = m.Local.Put(snap)
	return snap, nil
}

// Remove prunes both sides.
func (m *Mirror) Remove(hash string) {
	m.Local.Remove(hash)
	m.Remote.Remove(hash)
}

// Link records the ref remotely first, then locally.
func (m *Mirror) Link(key, hash string) error {
	if err := m.Remote.Link(key, hash); err != nil {
		return fmt.Errorf("mirror remote: %w", err)
	}
	return m.Local.Link(key, hash)
}

// Unlink removes the ref from both sides.
func (m *Mirror) Unlink(key string) {
	m.Local.Unlink(key)
	m.Remote.Unlink(key)
}

// Resolve prefers the local ref and falls back to the remote one.
func (m *Mirror) Resolve(key string) (string, bool) {
	if hash, ok := m.Local.Resolve(key); ok {
		return hash, ok
	}
	return m.Remote.Resolve(key)
}
