package checkpoint

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sampleSnap builds a small two-section snapshot with distinguishable
// content, so tests can tell snapshots apart by hash.
func sampleSnap(t *testing.T, tag string) *Snapshot {
	t.Helper()
	s := New()
	w := s.Section("cpu")
	w.U64(42)
	w.String(tag)
	s.Section("mem").Bytes([]byte("payload-" + tag))
	return s
}

// newRemote serves a fresh on-disk store over HTTP and returns the
// backing store plus a client for it.
func newRemote(t *testing.T) (*Store, *HTTPStore) {
	t.Helper()
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(StoreHandler(st))
	t.Cleanup(srv.Close)
	return st, NewHTTPStore(srv.URL, srv.Client())
}

func TestHTTPStoreRoundTrip(t *testing.T) {
	backing, remote := newRemote(t)

	snap := sampleSnap(t, "a")
	hash, err := remote.Put(snap)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if hash != snap.Hash() {
		t.Fatalf("Put returned %s, want %s", hash, snap.Hash())
	}
	// The upload landed in the backing store under the same hash.
	if _, err := backing.Load(hash); err != nil {
		t.Fatalf("backing store missing uploaded snapshot: %v", err)
	}

	got, err := remote.Load(hash)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if string(got.Encode()) != string(snap.Encode()) {
		t.Fatal("round-tripped snapshot differs")
	}
	if remote.Fetches() != 1 {
		t.Fatalf("Fetches = %d, want 1", remote.Fetches())
	}

	const key = "midrun|wl=x|sch=y/z"
	if err := remote.Link(key, hash); err != nil {
		t.Fatalf("Link: %v", err)
	}
	if h, ok := remote.Resolve(key); !ok || h != hash {
		t.Fatalf("Resolve = %q, %v; want %q, true", h, ok, hash)
	}
	remote.Unlink(key)
	if _, ok := remote.Resolve(key); ok {
		t.Fatal("ref survived Unlink")
	}

	remote.Remove(hash)
	if _, err := remote.Load(hash); err == nil {
		t.Fatal("snapshot survived Remove")
	}
}

func TestHTTPStoreErrors(t *testing.T) {
	_, remote := newRemote(t)

	if _, err := remote.Load(strings.Repeat("ab", 32)); err == nil {
		t.Fatal("Load of unknown hash succeeded")
	}
	if _, ok := remote.Resolve("no-such-key"); ok {
		t.Fatal("Resolve of unknown key succeeded")
	}
	if err := remote.Link("k", "not-a-hash"); err == nil {
		t.Fatal("Link with malformed hash succeeded")
	}
	// A dead endpoint surfaces as errors, not panics.
	dead := NewHTTPStore("http://127.0.0.1:1/store", nil)
	if _, err := dead.Put(sampleSnap(t, "x")); err == nil {
		t.Fatal("Put to dead endpoint succeeded")
	}
	if _, ok := dead.Resolve("k"); ok {
		t.Fatal("Resolve against dead endpoint succeeded")
	}
}

// TestStoreHandlerRejectsLies pins the server-side verification: a PUT
// whose body does not hash to the claimed name must be rejected and must
// not leave linkable content behind.
func TestStoreHandlerRejectsLies(t *testing.T) {
	backing, remote := newRemote(t)
	srv := httptest.NewServer(StoreHandler(backing))
	defer srv.Close()

	snap := sampleSnap(t, "honest")
	lie := strings.Repeat("00", 32)
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/snap/"+lie, strings.NewReader(string(snap.Encode())))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lying PUT: status %d, want 400", resp.StatusCode)
	}
	// Neither the lie nor the true hash is servable afterwards.
	if _, err := remote.Load(lie); err == nil {
		t.Fatal("lying hash became loadable")
	}
	if _, err := remote.Load(snap.Hash()); err == nil {
		t.Fatal("true hash of rejected upload became loadable")
	}

	// Garbage bodies and malformed hashes are 400s too.
	for _, tc := range []struct{ path, body string }{
		{"/snap/" + lie, "not a snapshot"},
		{"/snap/zzz", string(snap.Encode())},
		{"/ref?key=k", "not-a-hash"},
		{"/ref", strings.Repeat("ab", 32)},
	} {
		req, err := http.NewRequest(http.MethodPut, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT %s: status %d, want 400", tc.path, resp.StatusCode)
		}
	}
}

func TestMirrorWriteOrderingAndFallback(t *testing.T) {
	local, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	remoteBacking, remote := newRemote(t)
	m := &Mirror{Local: local, Remote: remote}

	snap := sampleSnap(t, "m")
	hash, err := m.Put(snap)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := local.Load(hash); err != nil {
		t.Fatalf("Put did not land locally: %v", err)
	}
	if _, err := remoteBacking.Load(hash); err != nil {
		t.Fatalf("Put did not land remotely: %v", err)
	}

	const key = "midrun|mirror"
	if err := m.Link(key, hash); err != nil {
		t.Fatalf("Link: %v", err)
	}
	// The ordering invariant: a local ref implies the remote ref exists.
	if _, ok := local.Resolve(key); !ok {
		t.Fatal("Link did not land locally")
	}
	if h, ok := remote.Resolve(key); !ok || h != hash {
		t.Fatalf("Link did not land remotely: %q, %v", h, ok)
	}
	if h, ok := m.Resolve(key); !ok || h != hash {
		t.Fatalf("Mirror Resolve = %q, %v", h, ok)
	}

	// Drop the local copy: Load falls back to the remote and backfills.
	local.Remove(hash)
	got, err := m.Load(hash)
	if err != nil {
		t.Fatalf("Load after local prune: %v", err)
	}
	if got.Hash() != hash {
		t.Fatalf("fallback Load hash = %s, want %s", got.Hash(), hash)
	}
	if remote.Fetches() == 0 {
		t.Fatal("fallback Load did not fetch from the remote")
	}
	if _, err := local.Load(hash); err != nil {
		t.Fatalf("fallback Load did not backfill locally: %v", err)
	}

	// Drop only the local ref: Resolve falls back to the remote one.
	local.Unlink(key)
	if h, ok := m.Resolve(key); !ok || h != hash {
		t.Fatalf("Resolve after local unlink = %q, %v", h, ok)
	}

	m.Unlink(key)
	if _, ok := m.Resolve(key); ok {
		t.Fatal("ref survived Mirror Unlink")
	}
	m.Remove(hash)
	if _, err := m.Load(hash); err == nil {
		t.Fatal("snapshot survived Mirror Remove")
	}
}

// TestMirrorRemoteFailureIsLoud pins the durability contract: when the
// remote side is down, Put and Link fail rather than silently degrading
// to local-only checkpoints.
func TestMirrorRemoteFailureIsLoud(t *testing.T) {
	local, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := &Mirror{Local: local, Remote: NewHTTPStore("http://127.0.0.1:1/store", nil)}

	snap := sampleSnap(t, "down")
	if _, err := m.Put(snap); err == nil {
		t.Fatal("Put with dead remote succeeded")
	}
	if err := m.Link("k", snap.Hash()); err == nil {
		t.Fatal("Link with dead remote succeeded")
	}
	// And because Link is remote-first, no local ref was recorded.
	if _, ok := local.Resolve("k"); ok {
		t.Fatal("failed Link left a local ref behind")
	}
}
