package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// FormatVersion is the snapshot container format version. Bump it whenever
// the container layout (not a component payload) changes incompatibly.
const FormatVersion = 1

// magic identifies a snapshot file; the trailing \r\n catches text-mode
// corruption the way PNG's header does.
var magic = [8]byte{'M', 'T', 'S', 'N', 'A', 'P', '\r', '\n'}

// section is one named payload inside a snapshot.
type section struct {
	name string
	w    *Writer
}

// Snapshot is an ordered collection of named byte sections, one per
// simulated component.
type Snapshot struct {
	sections []section
	index    map[string]int
}

// New returns an empty snapshot.
func New() *Snapshot {
	return &Snapshot{index: make(map[string]int)}
}

// Section creates a named section and returns its Writer. Creating the
// same section twice is a programming error and panics.
func (s *Snapshot) Section(name string) *Writer {
	if _, dup := s.index[name]; dup {
		panic(fmt.Sprintf("checkpoint: duplicate section %q", name))
	}
	w := &Writer{}
	s.index[name] = len(s.sections)
	s.sections = append(s.sections, section{name: name, w: w})
	return w
}

// Open returns a Reader over the named section's payload.
func (s *Snapshot) Open(name string) (*Reader, error) {
	i, ok := s.index[name]
	if !ok {
		return nil, fmt.Errorf("checkpoint: no section %q", name)
	}
	return &Reader{name: name, buf: s.sections[i].w.buf}, nil
}

// Has reports whether the named section exists.
func (s *Snapshot) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Names returns the section names in insertion order.
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.sections))
	for i, sec := range s.sections {
		out[i] = sec.name
	}
	return out
}

// Encode renders the snapshot in its canonical byte form:
// magic, version, section count, then each section as
// (name length, name, payload length, payload).
func (s *Snapshot) Encode() []byte {
	n := len(magic) + 4 + 4
	for _, sec := range s.sections {
		n += 4 + len(sec.name) + 8 + len(sec.w.buf)
	}
	out := make([]byte, 0, n)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.sections)))
	for _, sec := range s.sections {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(sec.name)))
		out = append(out, sec.name...)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(sec.w.buf)))
		out = append(out, sec.w.buf...)
	}
	return out
}

// Decode parses a snapshot from its canonical byte form.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(magic)+8 {
		return nil, fmt.Errorf("checkpoint: truncated snapshot (%d bytes)", len(b))
	}
	if [8]byte(b[:8]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic")
	}
	b = b[8:]
	ver := binary.LittleEndian.Uint32(b)
	if ver != FormatVersion {
		return nil, fmt.Errorf("checkpoint: format version %d, want %d", ver, FormatVersion)
	}
	count := binary.LittleEndian.Uint32(b[4:])
	b = b[8:]
	s := New()
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("checkpoint: truncated section header")
		}
		nameLen := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint64(len(b)) < uint64(nameLen)+8 {
			return nil, fmt.Errorf("checkpoint: truncated section name")
		}
		name := string(b[:nameLen])
		b = b[nameLen:]
		payLen := binary.LittleEndian.Uint64(b)
		b = b[8:]
		if uint64(len(b)) < payLen {
			return nil, fmt.Errorf("checkpoint: truncated section %q payload", name)
		}
		if _, dup := s.index[name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate section %q", name)
		}
		w := s.Section(name)
		w.buf = append(w.buf, b[:payLen]...)
		b = b[payLen:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(b))
	}
	return s, nil
}

// Hash returns the SHA-256 of the canonical encoding, hex-encoded. Equal
// machine state yields equal hashes (savers serialise deterministically).
func (s *Snapshot) Hash() string {
	sum := sha256.Sum256(s.Encode())
	return hex.EncodeToString(sum[:])
}

// Writer serialises fixed-width little-endian primitives into a section.
type Writer struct {
	buf []byte
}

// Len reports the bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 writes a uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 writes an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// U32 writes a uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U8 writes a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader deserialises a section written by Writer. All getters are safe to
// call after an error; they return zero values and the first error sticks.
type Reader struct {
	name string
	buf  []byte
	off  int
	err  error
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("checkpoint: section %q truncated at offset %d (+%d)", r.name, r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes reads a length-prefixed byte slice (a copy).
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.err = fmt.Errorf("checkpoint: section %q claims %d bytes with %d left", r.name, n, len(r.buf)-r.off)
		return nil
	}
	b := r.take(int(n))
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Failf records a semantic error (geometry mismatch and the like) so it
// surfaces through Err alongside decoding errors.
func (r *Reader) Failf(format string, args ...any) error {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: section %q: %s", r.name, fmt.Sprintf(format, args...))
	}
	return r.err
}
