package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is a content-addressed snapshot directory: encoded snapshots live
// in <dir>/<content-hash>.snap, and small ref files map an input key (the
// configuration that produced a snapshot) to the content hash so callers
// can resolve a snapshot without rebuilding it.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a snapshot store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) snapPath(hash string) string {
	return filepath.Join(st.dir, hash+".snap")
}

func (st *Store) refPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(st.dir, hex.EncodeToString(sum[:])+".ref")
}

// WriteAtomic writes data to path via a temp file + rename, so concurrent
// figure runs never observe a torn file. Shared by the snapshot store and
// the figures disk cache.
func WriteAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// Put writes the snapshot under its content hash and returns the hash.
// A snapshot that is already present is not rewritten.
func (st *Store) Put(s *Snapshot) (string, error) {
	enc := s.Encode()
	sum := sha256.Sum256(enc)
	hash := hex.EncodeToString(sum[:])
	path := st.snapPath(hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	if err := WriteAtomic(path, enc); err != nil {
		return "", err
	}
	return hash, nil
}

// Load reads the snapshot with the given content hash, verifying the
// content actually hashes to it.
func (st *Store) Load(hash string) (*Snapshot, error) {
	b, err := os.ReadFile(st.snapPath(hash))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(b)
	if got := hex.EncodeToString(sum[:]); got != hash {
		return nil, fmt.Errorf("checkpoint: store corruption: %s.snap hashes to %s", hash, got)
	}
	return Decode(b)
}

// Remove deletes the snapshot with the given content hash, if present.
// Best-effort by design: pruning a superseded mid-run checkpoint must
// never fail the run that outgrew it, and a missing file is already the
// desired state.
func (st *Store) Remove(hash string) {
	_ = os.Remove(st.snapPath(hash))
}

// Link records that the given input key produced the snapshot with the
// given content hash.
func (st *Store) Link(key, hash string) error {
	return WriteAtomic(st.refPath(key), []byte(hash+"\n"))
}

// Unlink removes the ref recorded for an input key, if present.
// Best-effort, like Remove: retiring a completed run's checkpoint chain
// must never fail the run.
func (st *Store) Unlink(key string) {
	_ = os.Remove(st.refPath(key))
}

// Resolve returns the content hash previously linked to the input key.
func (st *Store) Resolve(key string) (string, bool) {
	b, err := os.ReadFile(st.refPath(key))
	if err != nil {
		return "", false
	}
	hash := strings.TrimSpace(string(b))
	if len(hash) != sha256.Size*2 {
		return "", false
	}
	return hash, true
}
