package checkpoint_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/simtest"
)

// fuzzTB adapts *testing.F to simtest.TB for corpus construction.
type fuzzTB struct{ *testing.F }

func (f fuzzTB) Helper() {}

// realSnapshotBytes encodes a genuine machine snapshot — registers,
// caches, TLBs, predictor, DRAM state, the works — so the fuzzer starts
// from the corpus the decoder actually faces in production, not just
// hand-rolled toys.
func realSnapshotBytes(f *testing.F) []byte {
	sys := simtest.WarmSystem(fuzzTB{f}, "hmmer", 0.02, 500)
	snap, err := sys.Checkpoint()
	if err != nil {
		f.Fatalf("seed snapshot: %v", err)
	}
	return snap.Encode()
}

// tinySnapshotBytes builds a minimal multi-section snapshot exercising
// every primitive the Writer emits.
func tinySnapshotBytes() []byte {
	s := checkpoint.New()
	w := s.Section("alpha")
	w.U64(0xdeadbeefcafef00d)
	w.U32(42)
	w.U8(7)
	w.Bool(true)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	s.Section("empty")
	w2 := s.Section("beta")
	w2.I64(-12345)
	return s.Encode()
}

// FuzzDecode hammers the snapshot container decoder: arbitrary inputs —
// truncations, bit flips, wrong versions, hostile section counts and
// length fields — must either decode cleanly or return an error; never
// panic, never over-allocate against a tiny input, and anything that
// decodes must re-encode byte-identically (the canonical-form property
// the content-addressed store's hashing depends on).
func FuzzDecode(f *testing.F) {
	real := realSnapshotBytes(f)
	tiny := tinySnapshotBytes()
	f.Add([]byte{})
	f.Add([]byte("MTSNAP\r\n"))
	f.Add(tiny)
	f.Add(real)
	f.Add(real[:len(real)/2])
	f.Add(real[:len(real)-1])
	// Wrong container version.
	wrongVer := bytes.Clone(tiny)
	binary.LittleEndian.PutUint32(wrongVer[8:], 999)
	f.Add(wrongVer)
	// Hostile section count with no payload behind it.
	hostile := bytes.Clone(tiny[:16])
	binary.LittleEndian.PutUint32(hostile[12:], 0xffffffff)
	f.Add(hostile)
	// Flip a byte in the middle of a section payload.
	corrupt := bytes.Clone(tiny)
	corrupt[len(corrupt)/2] ^= 0x80
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := checkpoint.Decode(b)
		if err != nil {
			return // rejected: exactly what corrupt input must produce
		}
		enc := s.Encode()
		if !bytes.Equal(enc, b) {
			t.Fatalf("decode/encode not canonical: %d in, %d out", len(b), len(enc))
		}
		// Every named section must open, and its reader must survive
		// arbitrary over-reads (errors stick, getters return zeros).
		for _, name := range s.Names() {
			r, err := s.Open(name)
			if err != nil {
				t.Fatalf("section %q listed but will not open: %v", name, err)
			}
			r.U64()
			r.Bytes()
			r.U32()
			_ = r.String()
			r.U8()
			r.Bool()
			_ = r.Err()
		}
	})
}

// FuzzReaderPrimitives drives the section reader's primitive decoders
// over arbitrary payloads: no input may panic, and the first error must
// stick (later reads return zero values).
func FuzzReaderPrimitives(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint8(7))
	f.Fuzz(func(t *testing.T, payload []byte, order uint8) {
		s := checkpoint.New()
		w := s.Section("p")
		w.Bytes(payload)
		dec, err := checkpoint.Decode(s.Encode())
		if err != nil {
			t.Fatalf("round trip of fuzz payload failed: %v", err)
		}
		r, err := dec.Open("p")
		if err != nil {
			t.Fatal(err)
		}
		// Interleave primitive reads in a fuzz-chosen order; once Err is
		// non-nil it must never reset.
		sawErr := false
		for i := 0; i < 16; i++ {
			switch (int(order) + i) % 6 {
			case 0:
				r.U64()
			case 1:
				r.U32()
			case 2:
				r.U8()
			case 3:
				r.Bool()
			case 4:
				r.Bytes()
			case 5:
				_ = r.String()
			}
			if r.Err() != nil {
				sawErr = true
			} else if sawErr {
				t.Fatal("reader error did not stick")
			}
		}
	})
}
