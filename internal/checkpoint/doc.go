// Package checkpoint implements the versioned, content-addressed snapshot
// format the simulator uses to fast-forward figure runs: a Snapshot is an
// ordered set of named sections, each a flat little-endian byte payload
// produced by a component's Save method and consumed by its Restore.
//
// Key types:
//
//   - Snapshot: the container. Sections are created with Section (write
//     side) and read back with Open. Encode/Decode give the canonical byte
//     form; Hash is the SHA-256 of that form, so two snapshots with equal
//     state have equal hashes (every saver serialises maps in sorted order
//     to keep the encoding canonical).
//   - Writer / Reader: fixed-width primitive codecs. Readers carry a sticky
//     error; a Restore implementation reads unconditionally and returns
//     r.Err() once at the end.
//   - Store: a content-addressed directory of encoded snapshots
//     (<hash>.snap), with human-opaque ref files mapping an input key — the
//     (workload, scale, cores, warm-up) tuple that produced a snapshot — to
//     its content hash, so later runs resolve a snapshot without
//     re-simulating the warm-up that built it.
//
// Invariants:
//
//   - The format is versioned (FormatVersion); Decode rejects other
//     versions rather than guessing.
//   - Section names are unique within a snapshot and iteration order is
//     insertion order; Encode is therefore deterministic given
//     deterministic savers.
//   - checkpoint sits below every simulated component: it imports nothing
//     from the simulator, and everything that owns machine state imports
//     it.
package checkpoint
