package checkpoint

import (
	"path/filepath"
	"testing"
)

func buildSample() *Snapshot {
	s := New()
	w := s.Section("alpha")
	w.U64(42)
	w.U32(7)
	w.U8(3)
	w.Bool(true)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.I64(-5)
	s.Section("beta").U64(99)
	return s
}

func TestCodecRoundTrip(t *testing.T) {
	s := buildSample()
	dec, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Hash(), s.Hash(); got != want {
		t.Fatalf("hash changed across encode/decode: %s vs %s", got, want)
	}
	r, err := dec.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if r.U64() != 42 || r.U32() != 7 || r.U8() != 3 || !r.Bool() {
		t.Fatal("primitive mismatch")
	}
	b := r.Bytes()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Fatalf("bytes mismatch: %v", b)
	}
	if r.String() != "hello" || r.I64() != -5 {
		t.Fatal("string/int mismatch")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if !dec.Has("beta") || dec.Has("gamma") {
		t.Fatal("section presence wrong")
	}
}

func TestReaderStickyError(t *testing.T) {
	s := New()
	s.Section("short").U8(1)
	r, _ := s.Open("short")
	r.U8()
	if r.U64() != 0 || r.Err() == nil {
		t.Fatal("overrun not detected")
	}
	// Subsequent reads stay zero with the same first error.
	first := r.Err()
	if r.U32() != 0 || r.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := buildSample().Encode()
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncation accepted")
	}
	bad := append([]byte{}, enc...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte{}, enc...)
	bad[8] = 0xee // version
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestHashReflectsContent(t *testing.T) {
	a := New()
	a.Section("x").U64(1)
	b := New()
	b.Section("x").U64(2)
	if a.Hash() == b.Hash() {
		t.Fatal("distinct content, same hash")
	}
	c := New()
	c.Section("x").U64(1)
	if a.Hash() != c.Hash() {
		t.Fatal("equal content, different hash")
	}
}

func TestStorePutLoadResolve(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	s := buildSample()
	hash, err := st.Put(s)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent put.
	if h2, err := st.Put(s); err != nil || h2 != hash {
		t.Fatalf("re-put: %s, %v", h2, err)
	}
	loaded, err := st.Load(hash)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash() != hash {
		t.Fatal("loaded snapshot hash mismatch")
	}
	if err := st.Link("workload=w|scale=1", hash); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Resolve("workload=w|scale=1")
	if !ok || got != hash {
		t.Fatalf("resolve: %q, %v", got, ok)
	}
	if _, ok := st.Resolve("other"); ok {
		t.Fatal("resolved unknown key")
	}
	if _, err := st.Load("deadbeef"); err == nil {
		t.Fatal("loaded missing hash")
	}
}
