package cache

import "repro/internal/mem"

// MSHR is one miss-status holding register: a pending miss to a line with
// the set of waiters to notify when the fill returns.
type MSHR struct {
	LineAddr uint64
	Waiters  []func()
}

// MSHRFile tracks outstanding misses for one cache. Requests to a line
// that already has an MSHR coalesce onto it; when every register is busy
// the cache must stall new misses (paper Table 1 gives 4 MSHRs for the L1s
// and filter caches, 16 for the L2).
type MSHRFile struct {
	cap     int
	entries map[uint64]*MSHR

	// Stats
	Allocs    uint64
	Coalesced uint64
	FullStall uint64
}

// NewMSHRFile returns a file with capacity registers.
func NewMSHRFile(capacity int) *MSHRFile {
	return &MSHRFile{cap: capacity, entries: make(map[uint64]*MSHR)}
}

// Lookup returns the MSHR for a line, if any.
func (f *MSHRFile) Lookup(addr uint64) *MSHR {
	return f.entries[mem.LineAddr(addr)]
}

// Full reports whether a new allocation would fail.
func (f *MSHRFile) Full() bool { return len(f.entries) >= f.cap }

// InUse reports the number of live registers.
func (f *MSHRFile) InUse() int { return len(f.entries) }

// Allocate records a miss on addr. It returns (mshr, true) when this call
// created the registration or coalesced onto an existing one, and
// (nil, false) when the file is full and the request must retry.
// The primary return distinguishes coalescing via MSHR identity:
// callers that need to know can Lookup first.
func (f *MSHRFile) Allocate(addr uint64, onFill func()) (*MSHR, bool) {
	la := mem.LineAddr(addr)
	if m, ok := f.entries[la]; ok {
		f.Coalesced++
		if onFill != nil {
			m.Waiters = append(m.Waiters, onFill)
		}
		return m, true
	}
	if len(f.entries) >= f.cap {
		f.FullStall++
		return nil, false
	}
	m := &MSHR{LineAddr: la}
	if onFill != nil {
		m.Waiters = append(m.Waiters, onFill)
	}
	f.entries[la] = m
	f.Allocs++
	return m, true
}

// Complete retires the MSHR for a line and runs its waiters in arrival
// order. Completing a line with no MSHR is a no-op (squashed requests).
func (f *MSHRFile) Complete(addr uint64) {
	la := mem.LineAddr(addr)
	m, ok := f.entries[la]
	if !ok {
		return
	}
	delete(f.entries, la)
	for _, w := range m.Waiters {
		w()
	}
}
