package cache

import "repro/internal/mem"

// NoWaiter marks an Allocate that needs no wake-up when the fill returns
// (the primary miss schedules its own completion event).
const NoWaiter int32 = -1

// Waker receives slot-parked wake-ups when a line's fill completes. The
// owner parks its completion state in a reusable slot of its own and hands
// the MSHR file the slot index; Complete hands the index back. This keeps
// the coalescing path free of per-miss closures (the same scheme the
// memory ports use for scheduled events).
type Waker interface {
	MSHRWake(slot int32)
}

// MSHR is one miss-status holding register: a pending miss to a line with
// the parked waiter slots to wake when the fill returns.
type MSHR struct {
	LineAddr uint64
	slots    []int32
}

// Waiters reports how many wake-ups are parked on the register.
func (m *MSHR) Waiters() int { return len(m.slots) }

// MSHRFile tracks outstanding misses for one cache. Requests to a line
// that already has an MSHR coalesce onto it; when every register is busy
// the cache must stall new misses (paper Table 1 gives 4 MSHRs for the L1s
// and filter caches, 16 for the L2). Registers are pooled so the
// steady-state miss path performs no allocation.
type MSHRFile struct {
	cap     int
	entries map[uint64]*MSHR
	waker   Waker
	free    []*MSHR

	// Stats
	Allocs    uint64
	Coalesced uint64
	FullStall uint64
}

// NewMSHRFile returns a file with capacity registers.
func NewMSHRFile(capacity int) *MSHRFile {
	return &MSHRFile{cap: capacity, entries: make(map[uint64]*MSHR)}
}

// SetWaker installs the receiver for parked wake-up slots. A file whose
// callers only ever pass NoWaiter may leave it nil.
func (f *MSHRFile) SetWaker(w Waker) { f.waker = w }

// Lookup returns the MSHR for a line, if any.
func (f *MSHRFile) Lookup(addr uint64) *MSHR {
	return f.entries[mem.LineAddr(addr)]
}

// Full reports whether a new allocation would fail.
func (f *MSHRFile) Full() bool { return len(f.entries) >= f.cap }

// InUse reports the number of live registers.
func (f *MSHRFile) InUse() int { return len(f.entries) }

// Allocate records a miss on addr, parking slot (NoWaiter for none) to be
// woken through the file's Waker when the line completes. It returns
// (mshr, true) when this call created the registration or coalesced onto
// an existing one, and (nil, false) when the file is full and the request
// must retry.
func (f *MSHRFile) Allocate(addr uint64, slot int32) (*MSHR, bool) {
	if slot != NoWaiter && f.waker == nil {
		// Fail at the misuse site, not cycles later inside Complete.
		panic("cache: MSHR waiter parked on a file with no Waker installed")
	}
	la := mem.LineAddr(addr)
	if m, ok := f.entries[la]; ok {
		f.Coalesced++
		if slot != NoWaiter {
			m.slots = append(m.slots, slot)
		}
		return m, true
	}
	if len(f.entries) >= f.cap {
		f.FullStall++
		return nil, false
	}
	var m *MSHR
	if n := len(f.free); n > 0 {
		m = f.free[n-1]
		f.free = f.free[:n-1]
		m.LineAddr = la
	} else {
		m = &MSHR{LineAddr: la}
	}
	if slot != NoWaiter {
		m.slots = append(m.slots, slot)
	}
	f.entries[la] = m
	f.Allocs++
	return m, true
}

// Complete retires the MSHR for a line and wakes its parked waiters in
// arrival order. Completing a line with no MSHR is a no-op (squashed
// requests).
func (f *MSHRFile) Complete(addr uint64) {
	la := mem.LineAddr(addr)
	m, ok := f.entries[la]
	if !ok {
		return
	}
	delete(f.entries, la)
	for _, s := range m.slots {
		f.waker.MSHRWake(s)
	}
	m.slots = m.slots[:0]
	f.free = append(f.free, m)
}
