// Package cache provides the building blocks every cache in the hierarchy
// is made of: set-associative tag arrays with MESI line states and LRU
// replacement, and a miss-status holding register (MSHR) file that
// coalesces outstanding misses to the same line.
//
// Caches here hold metadata only; data bytes live in internal/mem. The
// filter-cache specialisations (committed bits, dual virtual/physical
// tags, register valid bits) are layered on by internal/core.
//
// Key types:
//
//   - State: MESI plus SE (SharedExclusivePending), the paper's §4.5
//     pseudo-state — protocol-visible Shared that requests an asynchronous
//     upgrade to Exclusive when its line commits.
//   - Line: one line's metadata — physical tag, optional virtual tag
//     (filter caches), state, committed bit, fill level, LRU stamp.
//   - Array: a set-associative tag array with true-LRU replacement.
//     Lookup refreshes recency; Peek (used by snoops) must not, because
//     recency perturbation by a snoop would itself be a side channel.
//   - MSHRFile: outstanding-miss tracking with coalescing. Waiters are
//     parked as typed int32 slots delivered through a Waker — never
//     closures — so the coalescing path does not allocate; registers are
//     pooled.
//
// Invariants:
//
//   - At most one copy of a physical line per array (Fill updates in
//     place rather than duplicating a tag).
//   - FillPreferCommitted implements filter-cache replacement: committed
//     lines are preferred victims because they are already written through
//     to the L1 (§4.2).
//   - MSHR waiters are woken in arrival order at Complete, on the
//     completing event — ordering the hierarchy's determinism relies on.
package cache
