package cache

import (
	"testing"

	"repro/internal/checkpoint"
)

func arrayBytes(a *Array) string {
	s := checkpoint.New()
	a.Save(s.Section("a"))
	return s.Hash()
}

func TestArraySaveRestoreRoundTrip(t *testing.T) {
	cfg := Config{Name: "l1", SizeBytes: 4096, Assoc: 2}
	a := NewArray(cfg)
	for i := uint64(0); i < 40; i++ {
		a.Fill(0x1000+i*64, State(1+i%3))
	}
	a.Lookup(0x1000) // perturb LRU
	a.InvalidateLine(0x1040)

	snap := checkpoint.New()
	a.Save(snap.Section("a"))
	b := NewArray(cfg)
	r, _ := snap.Open("a")
	if err := b.Restore(r); err != nil {
		t.Fatal(err)
	}
	if arrayBytes(a) != arrayBytes(b) {
		t.Fatal("restored array differs from original")
	}
	// Replacement state survived: the next victim choice must agree.
	if a.Victim(0x9000).Tag != b.Victim(0x9000).Tag {
		t.Fatal("victim choice diverged after restore")
	}
}

func TestArrayRestoreRejectsGeometryMismatch(t *testing.T) {
	a := NewArray(Config{Name: "a", SizeBytes: 4096, Assoc: 2})
	snap := checkpoint.New()
	a.Save(snap.Section("a"))
	b := NewArray(Config{Name: "b", SizeBytes: 8192, Assoc: 2})
	r, _ := snap.Open("a")
	if err := b.Restore(r); err == nil {
		t.Fatal("restore into mismatched geometry succeeded")
	}
}

func TestMSHRFileSaveRestoreStats(t *testing.T) {
	f := NewMSHRFile(2)
	f.SetWaker(&slotRecorder{})
	f.Allocate(0x40, 1)
	f.Allocate(0x40, 2)
	f.Allocate(0x80, NoWaiter)
	f.Allocate(0xc0, NoWaiter) // full -> stall
	f.Complete(0x40)
	f.Complete(0x80)

	snap := checkpoint.New()
	f.Save(snap.Section("m"))
	g := NewMSHRFile(2)
	r, _ := snap.Open("m")
	if err := g.Restore(r); err != nil {
		t.Fatal(err)
	}
	if g.Allocs != f.Allocs || g.Coalesced != f.Coalesced || g.FullStall != f.FullStall {
		t.Fatalf("stats mismatch: %+v vs %+v", g, f)
	}
}
