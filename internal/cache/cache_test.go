package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newTest(size uint64, assoc int) *Array {
	return NewArray(Config{Name: "t", SizeBytes: size, Assoc: assoc})
}

func TestArrayGeometry(t *testing.T) {
	a := newTest(2048, 4) // 32 lines, 8 sets
	if a.Lines() != 32 || a.Sets() != 8 || a.Assoc() != 4 {
		t.Fatalf("geometry: lines=%d sets=%d assoc=%d", a.Lines(), a.Sets(), a.Assoc())
	}
	fa := NewArray(Config{Name: "fa", SizeBytes: 2048, Assoc: 32})
	if fa.Sets() != 1 || fa.Assoc() != 32 {
		t.Fatalf("fully associative geometry wrong: sets=%d", fa.Sets())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArray(Config{Name: "bad", SizeBytes: 0, Assoc: 4})
}

func TestNonPowerOfTwoSetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArray(Config{Name: "bad", SizeBytes: 3 * 64, Assoc: 1})
}

func TestLookupMissThenHit(t *testing.T) {
	a := newTest(1024, 2)
	addr := uint64(0x1000)
	if a.Lookup(addr) != nil {
		t.Fatal("empty cache should miss")
	}
	a.Fill(addr, Shared)
	l := a.Lookup(addr + 63) // same line, different offset
	if l == nil {
		t.Fatal("fill then lookup should hit")
	}
	if l.Tag != addr {
		t.Fatalf("tag = %#x, want %#x", l.Tag, addr)
	}
	if l.State != Shared {
		t.Fatalf("state = %v", l.State)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache: fill two lines in one set, touch the first, fill a
	// third; the second must be the victim.
	a := newTest(128, 2) // 2 lines, 1 set
	a.Fill(0x0000, Shared)
	a.Fill(0x1000, Shared)
	if a.Lookup(0x0000) == nil {
		t.Fatal("expected hit")
	}
	_, evicted, had := a.Fill(0x2000, Shared)
	if !had || evicted.Tag != 0x1000 {
		t.Fatalf("evicted %#x (had=%v), want 0x1000", evicted.Tag, had)
	}
	if a.Lookup(0x0000) == nil || a.Lookup(0x2000) == nil {
		t.Fatal("survivors missing")
	}
}

func TestVictimPrefersInvalidWay(t *testing.T) {
	a := newTest(128, 2)
	a.Fill(0x0000, Shared)
	_, _, had := a.Fill(0x1000, Shared)
	if had {
		t.Fatal("second fill should use the invalid way")
	}
}

func TestPeekDoesNotRefreshLRU(t *testing.T) {
	a := newTest(128, 2)
	a.Fill(0x0000, Shared)
	a.Fill(0x1000, Shared)
	// Peek at the older line; it must still be the LRU victim.
	if a.Peek(0x0000) == nil {
		t.Fatal("peek should find line")
	}
	_, evicted, _ := a.Fill(0x2000, Shared)
	if evicted.Tag != 0x0000 {
		t.Fatalf("evicted %#x, want 0x0000 (Peek must not refresh LRU)", evicted.Tag)
	}
}

func TestInvalidateLine(t *testing.T) {
	a := newTest(1024, 2)
	a.Fill(0x40, Modified)
	if st := a.InvalidateLine(0x40); st != Modified {
		t.Fatalf("previous state = %v, want M", st)
	}
	if a.Lookup(0x40) != nil {
		t.Fatal("line still present after invalidate")
	}
	if st := a.InvalidateLine(0x40); st != Invalid {
		t.Fatal("double invalidate should report Invalid")
	}
}

func TestInvalidateAll(t *testing.T) {
	a := newTest(1024, 2)
	for i := uint64(0); i < 10; i++ {
		a.Fill(i*64, Shared)
	}
	if n := a.InvalidateAll(); n != 10 {
		t.Fatalf("InvalidateAll = %d, want 10", n)
	}
	if a.CountValid() != 0 {
		t.Fatal("lines remain after InvalidateAll")
	}
}

func TestLookupVirtual(t *testing.T) {
	a := newTest(1024, 4)
	l, _, _ := a.Fill(0x5000, Shared)
	l.VTag = 0x9000
	if a.LookupVirtual(0x9000) == nil {
		t.Fatal("virtual lookup should hit")
	}
	if a.LookupVirtual(0x5000) != nil {
		t.Fatal("virtual lookup by physical tag should miss")
	}
}

func TestStatePredicates(t *testing.T) {
	if Invalid.Valid() {
		t.Fatal("I is not valid")
	}
	if !Modified.Owned() || !Exclusive.Owned() || Shared.Owned() {
		t.Fatal("ownership predicate wrong")
	}
	if !Shared.ProtocolShared() || !SharedExclusivePending.ProtocolShared() {
		t.Fatal("SE must look Shared to the protocol")
	}
	if Exclusive.ProtocolShared() {
		t.Fatal("E is not protocol-shared")
	}
	if SharedExclusivePending.String() != "SE" || Modified.String() != "M" {
		t.Fatal("state names wrong")
	}
}

// Property: a cache never holds two lines with the same tag, and never
// holds more valid lines than its capacity.
func TestArrayInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newTest(512, 2) // 8 lines
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(32)) * mem.LineBytes
			switch rng.Intn(3) {
			case 0:
				a.Fill(addr, Shared)
			case 1:
				a.Lookup(addr)
			case 2:
				a.InvalidateLine(addr)
			}
			if a.CountValid() > a.Lines() {
				return false
			}
			seen := map[uint64]bool{}
			dup := false
			a.ForEach(func(l *Line) {
				if seen[l.Tag] {
					dup = true
				}
				seen[l.Tag] = true
			})
			if dup {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// slotRecorder is a test Waker that records woken slots in order.
type slotRecorder struct {
	woken []int32
}

func (s *slotRecorder) MSHRWake(slot int32) { s.woken = append(s.woken, slot) }

func TestMSHRCoalescing(t *testing.T) {
	f := NewMSHRFile(2)
	rec := &slotRecorder{}
	f.SetWaker(rec)
	m1, ok := f.Allocate(0x1000, 7)
	if !ok || m1 == nil {
		t.Fatal("first allocation failed")
	}
	m2, ok := f.Allocate(0x1020, 9) // same line
	if !ok || m2 != m1 {
		t.Fatal("same-line allocation should coalesce")
	}
	if f.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", f.InUse())
	}
	f.Complete(0x1000)
	if len(rec.woken) != 2 || rec.woken[0] != 7 || rec.woken[1] != 9 {
		t.Fatalf("woken slots = %v, want [7 9]", rec.woken)
	}
	if f.InUse() != 0 {
		t.Fatal("MSHR not released")
	}
}

func TestMSHRFullStalls(t *testing.T) {
	f := NewMSHRFile(1)
	f.Allocate(0x1000, NoWaiter)
	if _, ok := f.Allocate(0x2000, NoWaiter); ok {
		t.Fatal("full file should refuse new line")
	}
	if !f.Full() {
		t.Fatal("Full() should be true")
	}
	// Coalescing is still allowed when full.
	if _, ok := f.Allocate(0x1000, NoWaiter); !ok {
		t.Fatal("coalescing should succeed even when full")
	}
	f.Complete(0x1000)
	if _, ok := f.Allocate(0x2000, NoWaiter); !ok {
		t.Fatal("allocation after release should succeed")
	}
}

func TestMSHRCompleteUnknownLineIsNoop(t *testing.T) {
	f := NewMSHRFile(1)
	f.Complete(0x9999) // must not panic
}

func TestMSHRWaiterOrder(t *testing.T) {
	f := NewMSHRFile(4)
	rec := &slotRecorder{}
	f.SetWaker(rec)
	for i := int32(0); i < 5; i++ {
		f.Allocate(0x40, i)
	}
	f.Complete(0x40)
	for i, v := range rec.woken {
		if v != int32(i) {
			t.Fatalf("waiter order = %v", rec.woken)
		}
	}
}

// TestMSHRRegisterPooling verifies retired registers are reused rather
// than reallocated (the slot-parked design's no-allocation goal).
func TestMSHRRegisterPooling(t *testing.T) {
	f := NewMSHRFile(2)
	f.SetWaker(&slotRecorder{})
	m1, _ := f.Allocate(0x40, 1)
	f.Complete(0x40)
	m2, _ := f.Allocate(0x80, 2)
	if m1 != m2 {
		t.Fatal("register not recycled from the pool")
	}
	if m2.LineAddr != 0x80 || m2.Waiters() != 1 {
		t.Fatalf("recycled register state wrong: %+v", m2)
	}
}
