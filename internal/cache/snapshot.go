package cache

import "repro/internal/checkpoint"

// Save serialises the array's complete line state (every way of every set,
// valid or not, including replacement state) and the LRU tick.
func (a *Array) Save(w *checkpoint.Writer) {
	w.U32(uint32(len(a.sets)))
	w.U32(uint32(a.assoc))
	w.U64(a.tick)
	for s := range a.sets {
		for i := range a.sets[s] {
			l := &a.sets[s][i]
			w.U64(l.Tag)
			w.U64(l.VTag)
			w.U8(uint8(l.State))
			w.Bool(l.Committed)
			w.U8(l.FillLevel)
			w.U64(l.lru)
		}
	}
}

// Restore loads state saved by Save into an array of identical geometry.
func (a *Array) Restore(r *checkpoint.Reader) error {
	sets := int(r.U32())
	assoc := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if sets != len(a.sets) || assoc != a.assoc {
		return r.Failf("cache %q geometry %dx%d, snapshot %dx%d",
			a.name, len(a.sets), a.assoc, sets, assoc)
	}
	a.tick = r.U64()
	for s := range a.sets {
		for i := range a.sets[s] {
			l := &a.sets[s][i]
			l.Tag = r.U64()
			l.VTag = r.U64()
			l.State = State(r.U8())
			l.Committed = r.Bool()
			l.FillLevel = r.U8()
			l.lru = r.U64()
		}
	}
	return r.Err()
}

// Save serialises the MSHR file's statistics. Live registers are
// intentionally not serialised: checkpoints are only taken on a quiesced
// machine, where every file is empty — callers enforce that with InUse.
func (f *MSHRFile) Save(w *checkpoint.Writer) {
	w.U64(f.Allocs)
	w.U64(f.Coalesced)
	w.U64(f.FullStall)
}

// Restore loads MSHR statistics saved by Save.
func (f *MSHRFile) Restore(r *checkpoint.Reader) error {
	f.Allocs = r.U64()
	f.Coalesced = r.U64()
	f.FullStall = r.U64()
	return r.Err()
}
