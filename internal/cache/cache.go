package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// State is a MESI coherence state. Filter caches additionally use SE, a
// pseudo-state that behaves as Shared to the protocol but requests an
// asynchronous upgrade to Exclusive when its line commits (paper §4.5).
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	// SharedExclusivePending (SE in the paper): protocol-visible Shared;
	// on commit the L1 launches an asynchronous upgrade to Exclusive.
	SharedExclusivePending
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case SharedExclusivePending:
		return "SE"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the state holds data.
func (s State) Valid() bool { return s != Invalid }

// Owned reports whether the state grants write permission.
func (s State) Owned() bool { return s == Exclusive || s == Modified }

// ProtocolShared reports whether the state is Shared as far as the
// coherence protocol can observe (SE is protocol-visible Shared).
func (s State) ProtocolShared() bool { return s == Shared || s == SharedExclusivePending }

// Line is one cache line's metadata.
type Line struct {
	Tag   uint64 // physical line address (full address, line-aligned)
	VTag  uint64 // virtual line address (filter caches only; 0 if unused)
	State State
	// Committed marks filter-cache lines whose data has been used by at
	// least one committed instruction (paper §4.2). Non-filter caches
	// leave it true.
	Committed bool
	// FillLevel records which hierarchy level supplied the line (1 = L1,
	// 2 = L2, 3 = memory), used for commit-time prefetch notification
	// (paper §4.6).
	FillLevel uint8
	lru       uint64
}

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes uint64
	Assoc     int
	// Sets overrides the set count when non-zero (otherwise derived from
	// SizeBytes / (Assoc * LineBytes)).
	Sets int
}

// Array is a set-associative tag array with true-LRU replacement.
type Array struct {
	name    string
	sets    [][]Line
	assoc   int
	setMask uint64
	tick    uint64
}

// NewArray builds a tag array from cfg. A fully associative cache is
// expressed as Assoc == number of lines (Sets == 1).
func NewArray(cfg Config) *Array {
	lines := int(cfg.SizeBytes / mem.LineBytes)
	if cfg.Assoc <= 0 || lines <= 0 {
		panic(fmt.Sprintf("cache %q: bad config %+v", cfg.Name, cfg))
	}
	sets := cfg.Sets
	if sets == 0 {
		sets = lines / cfg.Assoc
	}
	if sets <= 0 {
		sets = 1
	}
	if bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("cache %q: set count %d not a power of two", cfg.Name, sets))
	}
	a := &Array{
		name:    cfg.Name,
		sets:    make([][]Line, sets),
		assoc:   cfg.Assoc,
		setMask: uint64(sets - 1),
	}
	for i := range a.sets {
		a.sets[i] = make([]Line, cfg.Assoc)
	}
	return a
}

// Name returns the configured cache name.
func (a *Array) Name() string { return a.name }

// Sets returns the number of sets.
func (a *Array) Sets() int { return len(a.sets) }

// Assoc returns the associativity.
func (a *Array) Assoc() int { return a.assoc }

// Lines returns the total line capacity.
func (a *Array) Lines() int { return len(a.sets) * a.assoc }

// SetIndex computes the set index for an address (physical indexing).
func (a *Array) SetIndex(addr uint64) uint64 {
	return (addr >> mem.LineShift) & a.setMask
}

// Lookup returns the line holding addr, or nil on miss. A hit refreshes
// LRU state.
func (a *Array) Lookup(addr uint64) *Line {
	addr = mem.LineAddr(addr)
	set := a.sets[a.SetIndex(addr)]
	for i := range set {
		if set[i].State.Valid() && set[i].Tag == addr {
			a.tick++
			set[i].lru = a.tick
			return &set[i]
		}
	}
	return nil
}

// Peek is Lookup without touching LRU state (used by snoops, which must
// not perturb replacement as a side channel of their own).
func (a *Array) Peek(addr uint64) *Line {
	addr = mem.LineAddr(addr)
	set := a.sets[a.SetIndex(addr)]
	for i := range set {
		if set[i].State.Valid() && set[i].Tag == addr {
			return &set[i]
		}
	}
	return nil
}

// LookupVirtual finds a line by virtual tag (filter caches are virtually
// indexed and tagged from the CPU side, paper §4.4).
func (a *Array) LookupVirtual(vaddr uint64) *Line {
	vaddr = mem.LineAddr(vaddr)
	set := a.sets[a.SetIndex(vaddr)]
	for i := range set {
		if set[i].State.Valid() && set[i].VTag == vaddr {
			a.tick++
			set[i].lru = a.tick
			return &set[i]
		}
	}
	return nil
}

// Victim returns the line to evict for a fill of addr: an invalid way if
// one exists, otherwise the least recently used line in the set.
func (a *Array) Victim(addr uint64) *Line {
	set := a.sets[a.SetIndex(mem.LineAddr(addr))]
	var victim *Line
	for i := range set {
		if !set[i].State.Valid() {
			return &set[i]
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// Fill installs addr into the victim way and returns the line, plus a copy
// of the evicted line when a valid line was displaced. Filling an address
// that is already present updates the existing line in place (never
// creating a duplicate tag) and reports no eviction.
func (a *Array) Fill(addr uint64, st State) (*Line, Line, bool) {
	return a.fill(addr, st, a.Victim)
}

// FillPreferCommitted is Fill with filter-cache replacement: committed
// lines are preferred victims because they are already written through to
// the L1, whereas evicting an uncommitted line forfeits its speculative
// fill (it must be re-fetched at commit, paper §4.2).
func (a *Array) FillPreferCommitted(addr uint64, st State) (*Line, Line, bool) {
	return a.fill(addr, st, a.victimCommittedFirst)
}

func (a *Array) fill(addr uint64, st State, victim func(uint64) *Line) (*Line, Line, bool) {
	addr = mem.LineAddr(addr)
	a.tick++
	if l := a.Peek(addr); l != nil {
		l.State = st
		l.lru = a.tick
		return l, Line{}, false
	}
	v := victim(addr)
	evicted := *v
	hadVictim := evicted.State.Valid()
	*v = Line{Tag: addr, State: st, Committed: true, lru: a.tick}
	return v, evicted, hadVictim
}

// victimCommittedFirst picks an invalid way, else the LRU committed line,
// else the overall LRU line.
func (a *Array) victimCommittedFirst(addr uint64) *Line {
	set := a.sets[a.SetIndex(mem.LineAddr(addr))]
	var lruAll, lruCommitted *Line
	for i := range set {
		if !set[i].State.Valid() {
			return &set[i]
		}
		if lruAll == nil || set[i].lru < lruAll.lru {
			lruAll = &set[i]
		}
		if set[i].Committed && (lruCommitted == nil || set[i].lru < lruCommitted.lru) {
			lruCommitted = &set[i]
		}
	}
	if lruCommitted != nil {
		return lruCommitted
	}
	return lruAll
}

// InvalidateLine drops addr if present, returning the previous state.
func (a *Array) InvalidateLine(addr uint64) State {
	if l := a.Peek(addr); l != nil {
		st := l.State
		*l = Line{}
		return st
	}
	return Invalid
}

// InvalidateAll clears the whole array (the register-valid-bit flash
// invalidate of paper §4.3 when used on a filter cache).
func (a *Array) InvalidateAll() int {
	n := 0
	for s := range a.sets {
		for w := range a.sets[s] {
			if a.sets[s][w].State.Valid() {
				n++
				a.sets[s][w] = Line{}
			}
		}
	}
	return n
}

// ForEach visits every valid line.
func (a *Array) ForEach(fn func(*Line)) {
	for s := range a.sets {
		for w := range a.sets[s] {
			if a.sets[s][w].State.Valid() {
				fn(&a.sets[s][w])
			}
		}
	}
}

// CountValid reports the number of valid lines.
func (a *Array) CountValid() int {
	n := 0
	a.ForEach(func(*Line) { n++ })
	return n
}
