package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
)

func newFC() *FilterCache {
	return NewFilterCache(DefaultDataFilterConfig())
}

func TestDefaultConfigsMatchTableOne(t *testing.T) {
	d := DefaultDataFilterConfig()
	if d.SizeBytes != 2048 || d.Assoc != 4 || d.MSHRs != 4 {
		t.Fatalf("data filter config %+v does not match Table 1", d)
	}
	i := DefaultInstFilterConfig()
	if i.SizeBytes != 2048 || i.Assoc != 4 || i.MSHRs != 4 {
		t.Fatalf("inst filter config %+v does not match Table 1", i)
	}
	if newFC().Lines() != 32 {
		t.Fatalf("2KiB filter cache should have 32 lines")
	}
}

func TestFillThenVirtualLookup(t *testing.T) {
	f := newFC()
	f.Fill(0x9000, 0x5000, cache.Shared, false, 2)
	l := f.Lookup(0x9010) // same virtual line
	if l == nil {
		t.Fatal("virtual lookup missed after fill")
	}
	if l.Tag != 0x5000 || l.VTag != 0x9000 {
		t.Fatalf("tags wrong: P=%#x V=%#x", l.Tag, l.VTag)
	}
	if l.Committed {
		t.Fatal("speculative fill must start uncommitted")
	}
	if l.FillLevel != 2 {
		t.Fatalf("fill level = %d", l.FillLevel)
	}
}

func TestSnoopByPhysical(t *testing.T) {
	f := newFC()
	f.Fill(0x9000, 0x5000, cache.Shared, false, 2)
	if f.Snoop(0x5020) == nil {
		t.Fatal("physical snoop missed")
	}
	if f.Snoop(0x9000) != nil {
		t.Fatal("snoop by virtual address should miss")
	}
}

func TestPhysicalFillResolvesAliases(t *testing.T) {
	// Two virtual pages mapping the same physical line: only one copy may
	// exist (paper §4.4).
	f := newFC()
	f.Fill(0x9000, 0x5000, cache.Shared, false, 2)
	f.Fill(0xb000, 0x5000, cache.Shared, false, 2)
	count := 0
	f.ForEach(func(l *cache.Line) {
		if l.Tag == 0x5000 {
			count++
		}
	})
	if count != 1 {
		t.Fatalf("physical line present %d times, want 1", count)
	}
	if f.Lookup(0xb000) == nil {
		t.Fatal("latest virtual alias should hit")
	}
}

func TestMarkCommitted(t *testing.T) {
	f := newFC()
	f.Fill(0x9000, 0x5000, cache.SharedExclusivePending, false, 2)
	prev, wasUnc, present := f.MarkCommitted(0x5000)
	if !present || !wasUnc || prev != cache.SharedExclusivePending {
		t.Fatalf("MarkCommitted = prev %v wasUnc %v present %v", prev, wasUnc, present)
	}
	// SE collapses to S once committed.
	if l := f.Snoop(0x5000); l.State != cache.Shared || !l.Committed {
		t.Fatalf("line after commit: %v committed=%v", l.State, l.Committed)
	}
	// Second commit of same line: present but no longer uncommitted.
	_, wasUnc, present = f.MarkCommitted(0x5000)
	if !present || wasUnc {
		t.Fatal("second commit should find a committed line")
	}
	// Absent line.
	if _, _, present := f.MarkCommitted(0x7777); present {
		t.Fatal("absent line misreported")
	}
}

func TestFlashInvalidateClearsEverythingAndReportsDrops(t *testing.T) {
	f := newFC()
	var dropped []mem.Addr
	for i := uint64(0); i < 10; i++ {
		f.Fill(mem.VAddr(0x9000+i*64), mem.Addr(0x5000+i*64), cache.Shared, false, 2)
	}
	n := f.FlashInvalidate(func(p mem.Addr) { dropped = append(dropped, p) })
	if n != 10 || len(dropped) != 10 {
		t.Fatalf("flash invalidate cleared %d, dropped %d", n, len(dropped))
	}
	if f.CountValid() != 0 {
		t.Fatal("lines remain after flash invalidate")
	}
	if f.Flushes != 1 || f.LinesFlushed != 10 {
		t.Fatalf("flush stats: %d/%d", f.Flushes, f.LinesFlushed)
	}
}

func TestInvalidateSingleLine(t *testing.T) {
	f := newFC()
	f.Fill(0x9000, 0x5000, cache.Shared, true, 1)
	if st := f.Invalidate(0x5000); st != cache.Shared {
		t.Fatalf("Invalidate returned %v", st)
	}
	if f.Snoop(0x5000) != nil {
		t.Fatal("line still present")
	}
}

func TestUncommittedEvictionCounted(t *testing.T) {
	f := NewFilterCache(FilterConfig{Name: "tiny", SizeBytes: 64, Assoc: 1, MSHRs: 4})
	f.Fill(0x9000, 0x5000, cache.Shared, false, 2)
	f.Fill(0xa000, 0x6000, cache.Shared, false, 2) // displaces uncommitted line
	if f.EvictedUncommitted3 != 1 {
		t.Fatalf("EvictedUncommitted = %d, want 1", f.EvictedUncommitted3)
	}
}

func TestHitRate(t *testing.T) {
	f := newFC()
	f.Fill(0x9000, 0x5000, cache.Shared, false, 2)
	f.Lookup(0x9000)
	f.Lookup(0xdead000)
	if f.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", f.HitRate())
	}
}

// Property: a filter cache never holds a line in an owned (E/M) state —
// only I, S or SE are ever legal (paper §4.5) — given that fills only ever
// supply S or SE, and no sequence of operations can manufacture ownership.
func TestFilterNeverOwnedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fc := newFC()
		for i := 0; i < 300; i++ {
			p := mem.Addr(rng.Intn(128)) * mem.LineBytes
			v := mem.VAddr(rng.Intn(128)) * mem.LineBytes
			switch rng.Intn(5) {
			case 0:
				st := cache.Shared
				if rng.Intn(2) == 0 {
					st = cache.SharedExclusivePending
				}
				fc.Fill(v, p, st, rng.Intn(2) == 0, uint8(rng.Intn(3)+1))
			case 1:
				fc.Lookup(v)
			case 2:
				fc.MarkCommitted(p)
			case 3:
				fc.Invalidate(p)
			case 4:
				if rng.Intn(20) == 0 {
					fc.FlashInvalidate(nil)
				}
			}
			bad := false
			fc.ForEach(func(l *cache.Line) {
				if l.State.Owned() {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: committed bits are monotone — once committed, a line stays
// committed until invalidated or replaced.
func TestCommittedMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fc := newFC()
		committed := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			p := mem.Addr(rng.Intn(64)) * mem.LineBytes
			switch rng.Intn(3) {
			case 0:
				// refill resets tracking for that line
				fc.Fill(mem.VAddr(p)+0x1000000, p, cache.Shared, false, 2)
				delete(committed, uint64(p))
			case 1:
				if _, _, present := fc.MarkCommitted(p); present {
					committed[uint64(p)] = true
				}
			case 2:
				fc.Invalidate(p)
				delete(committed, uint64(p))
			}
			ok := true
			fc.ForEach(func(l *cache.Line) {
				if committed[l.Tag] && !l.Committed {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
