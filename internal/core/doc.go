// Package core implements the paper's primary contribution: the
// speculative filter cache (MuonTrap §4). A filter cache is a small,
// 1-cycle L0 placed between the core and the L1 that captures *all*
// speculative memory state:
//
//   - lines filled by speculative instructions carry a cleared "committed"
//     bit and are never written into non-speculative caches (§4.2);
//   - when an instruction using a line commits, the line is written
//     through to the L1 (and the inclusive L2) and marked committed;
//   - the cache is virtually indexed and tagged from the CPU side and
//     physically tagged from the memory side, so it needs no translation
//     on access but can still be snooped (§4.4);
//   - validity lives in registers beside the SRAM, so the whole cache is
//     flash-invalidated in a single cycle on a protection-domain switch
//     (§4.3) — this is what makes clearing cheap enough to do on every
//     context switch, syscall and sandbox entry;
//   - coherence-wise a filter cache only ever holds lines in Shared; the
//     SE pseudo-state records that an unprotected system would have held
//     the line Exclusive so the L1 can launch an asynchronous upgrade when
//     the line commits (§4.5).
//
// Key types:
//
//   - FilterCache: the structure itself — a cache.Array with dual tags and
//     committed bits, plus its MSHR file and statistics.
//   - FilterConfig: geometry (the paper's tuned configuration is 2KiB,
//     4-way).
//
// Invariants:
//
//   - Physical addressing on fill resolves virtual aliases: only one copy
//     of each physical line ever exists (§4.4).
//   - A filter cache holds only speculative state; at any quiesced point
//     (domain switch, checkpoint) its contents are discardable, which is
//     why warm-up snapshots carry no filter state and restore into any
//     protection scheme.
//
// The surrounding coherence machinery (NACKing speculative downgrades,
// broadcast filter invalidation on exclusive upgrades, commit-time
// prefetch notification) lives in internal/memsys; this package owns the
// structure itself plus the filter TLB policy.
package core
