package core
