package core

import (
	"repro/internal/cache"
	"repro/internal/mem"
)

// FilterConfig sizes a speculative filter cache. The paper's tuned
// configuration (§6.4) is 2KiB, 4-way.
type FilterConfig struct {
	Name      string
	SizeBytes uint64
	Assoc     int
	MSHRs     int
}

// DefaultDataFilterConfig is the paper's Table 1 data filter cache.
func DefaultDataFilterConfig() FilterConfig {
	return FilterConfig{Name: "l0d", SizeBytes: 2048, Assoc: 4, MSHRs: 4}
}

// DefaultInstFilterConfig is the paper's Table 1 instruction filter cache.
func DefaultInstFilterConfig() FilterConfig {
	return FilterConfig{Name: "l0i", SizeBytes: 2048, Assoc: 4, MSHRs: 4}
}

// FilterCache is one speculative filter cache (data or instruction).
type FilterCache struct {
	arr   *cache.Array
	MSHRs *cache.MSHRFile

	// Stats.
	Hits                uint64
	Misses              uint64
	Fills               uint64
	Flushes             uint64
	LinesFlushed        uint64
	EvictedUncommitted3 uint64 // uncommitted lines displaced before commit
}

// NewFilterCache builds a filter cache.
func NewFilterCache(cfg FilterConfig) *FilterCache {
	return &FilterCache{
		arr:   cache.NewArray(cache.Config{Name: cfg.Name, SizeBytes: cfg.SizeBytes, Assoc: cfg.Assoc}),
		MSHRs: cache.NewMSHRFile(cfg.MSHRs),
	}
}

// Lines reports the line capacity.
func (f *FilterCache) Lines() int { return f.arr.Lines() }

// CountValid reports live lines.
func (f *FilterCache) CountValid() int { return f.arr.CountValid() }

// Lookup performs the CPU-side (virtually addressed) lookup, counting
// hit/miss statistics.
func (f *FilterCache) Lookup(vaddr mem.VAddr) *cache.Line {
	l := f.arr.LookupVirtual(uint64(vaddr))
	if l != nil {
		f.Hits++
	} else {
		f.Misses++
	}
	return l
}

// Snoop performs the memory-side (physically addressed) lookup without
// perturbing replacement state.
func (f *FilterCache) Snoop(paddr mem.Addr) *cache.Line {
	return f.arr.Peek(uint64(paddr))
}

// Fill installs a line with both tags. Physical addressing on fill
// resolves virtual aliases: if the physical line is already present under
// a different virtual tag, that copy is overwritten so only one copy of
// each physical line ever exists (§4.4). It returns the evicted line when
// a valid line was displaced.
func (f *FilterCache) Fill(vaddr mem.VAddr, paddr mem.Addr, st cache.State, committed bool, fillLevel uint8) (evicted cache.Line, hadVictim bool) {
	f.Fills++
	line, ev, had := f.arr.FillPreferCommitted(uint64(paddr), st)
	line.VTag = uint64(mem.LineAddr(vaddr))
	line.Committed = committed
	line.FillLevel = fillLevel
	if had && !ev.Committed {
		f.EvictedUncommitted3++
	}
	return ev, had
}

// MarkCommitted sets the committed bit on the line holding paddr and
// reports whether the line was present and previously uncommitted (in
// which case the caller must write it through to the L1). The previous
// state is returned so the caller can detect SE lines needing an
// asynchronous exclusive upgrade.
func (f *FilterCache) MarkCommitted(paddr mem.Addr) (prev cache.State, wasUncommitted, present bool) {
	l := f.arr.Peek(uint64(paddr))
	if l == nil {
		return cache.Invalid, false, false
	}
	prev = l.State
	wasUncommitted = !l.Committed
	l.Committed = true
	if l.State == cache.SharedExclusivePending {
		// Once the upgrade is launched the pseudo-state collapses to S;
		// the exclusivity lives in the L1 from now on.
		l.State = cache.Shared
	}
	return prev, wasUncommitted, true
}

// Invalidate drops the line holding paddr (coherence invalidation or
// filter broadcast), reporting its previous state.
func (f *FilterCache) Invalidate(paddr mem.Addr) cache.State {
	return f.arr.InvalidateLine(uint64(paddr))
}

// FlashInvalidate clears every line in a single cycle by dropping the
// register valid bits (§4.3). It returns the number of lines cleared and
// invokes onDrop for each so the owner can update its filter-sharer
// tracking.
func (f *FilterCache) FlashInvalidate(onDrop func(paddr mem.Addr)) int {
	if onDrop != nil {
		f.arr.ForEach(func(l *cache.Line) { onDrop(mem.Addr(l.Tag)) })
	}
	n := f.arr.InvalidateAll()
	f.Flushes++
	f.LinesFlushed += uint64(n)
	return n
}

// ForEach visits every valid line.
func (f *FilterCache) ForEach(fn func(*cache.Line)) { f.arr.ForEach(fn) }

// HitRate reports the CPU-side hit rate.
func (f *FilterCache) HitRate() float64 {
	total := f.Hits + f.Misses
	if total == 0 {
		return 0
	}
	return float64(f.Hits) / float64(total)
}
