package core

import "repro/internal/checkpoint"

// Save serialises the filter cache's line array, MSHR statistics and
// hit/flush statistics. Checkpoints are taken on quiesced machines, so the
// MSHR file carries no live registers.
func (f *FilterCache) Save(w *checkpoint.Writer) {
	f.arr.Save(w)
	f.MSHRs.Save(w)
	w.U64(f.Hits)
	w.U64(f.Misses)
	w.U64(f.Fills)
	w.U64(f.Flushes)
	w.U64(f.LinesFlushed)
	w.U64(f.EvictedUncommitted3)
}

// Restore loads state saved by Save into a filter cache of identical
// geometry.
func (f *FilterCache) Restore(r *checkpoint.Reader) error {
	if err := f.arr.Restore(r); err != nil {
		return err
	}
	if err := f.MSHRs.Restore(r); err != nil {
		return err
	}
	f.Hits = r.U64()
	f.Misses = r.U64()
	f.Fills = r.U64()
	f.Flushes = r.U64()
	f.LinesFlushed = r.U64()
	f.EvictedUncommitted3 = r.U64()
	return r.Err()
}
