package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/fleet"
	"repro/internal/telemetry"
	"repro/muontrap"
)

// scrapeCoordinator fetches the coordinator's /metrics exposition.
func scrapeCoordinator(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one un-labelled (or exactly-labelled) sample
// value from an exposition body; -1 when absent.
func metricValue(body, series string) float64 {
	for _, l := range strings.Split(body, "\n") {
		var v float64
		if _, err := fmt.Sscanf(l, series+" %g", &v); err == nil && strings.HasPrefix(l, series+" ") {
			return v
		}
	}
	return -1
}

// TestFleetChaosMetricsScrape is the observability half of the chaos
// gate: a worker is killed mid-cell while /metrics is scraped live, and
// after the sweep completes the exposition must show the dead worker,
// the migration (re-dispatch), per-scheme sim throughput (the workers
// run in-process, so the process-global sim profiler sees their runs),
// attempt latency histograms, and a lifecycle trace carrying the
// worker_dead and requeue records. /v1/healthz must agree with the
// worker gauges — both read the same Stats() snapshot.
func TestFleetChaosMetricsScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation")
	}
	defer figures.ResetRunCache()
	figures.ResetRunCache()

	reg := telemetry.NewRegistry()
	telemetry.EnableSimProfiling(reg)
	defer telemetry.DisableSimProfiling()
	tracer, err := telemetry.NewTracer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tracer.Close()

	f := newTestFleet(t, 2, fleet.Config{Metrics: reg, Tracer: tracer})
	sw := muontrap.Sweep{
		Workloads: []muontrap.Workload{"swaptions"},
		Schemes:   []muontrap.Scheme{"insecure", "muontrap", "stt-spectre"},
		Scales:    []float64{0.02},
	}
	job, err := f.client.Submit(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}

	// Live scrape while the sweep is in flight.
	live := scrapeCoordinator(t, f.hs.URL)
	if !strings.Contains(live, "muontrap_fleet_workers_alive 2") {
		t.Errorf("live scrape shows wrong alive count:\n%s", grepFor(live, "workers_alive"))
	}

	// Kill a worker once its first mid-run checkpoint ref lands, exactly
	// as the headline chaos test does.
	victim := f.workers[0]
	deadline := time.Now().Add(2 * time.Minute)
	for !hasRef(victim.snapDir()) {
		if time.Now().After(deadline) {
			t.Fatal("no mid-run checkpoint ref appeared before the kill deadline")
		}
		if j, err := f.client.Job(context.Background(), job.ID); err == nil && j.State.Terminal() {
			t.Fatalf("job reached %s before the victim ever checkpointed", j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.kill()

	final, err := f.client.Stream(context.Background(), job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != muontrap.JobDone {
		t.Fatalf("fleet job ended %s (%s), want done", final.State, final.Error)
	}

	body := scrapeCoordinator(t, f.hs.URL)
	for _, want := range []string{
		"muontrap_fleet_workers_alive 1",
		"muontrap_fleet_workers_dead 1",
		"muontrap_fleet_workers_dead_total 1",
		"muontrap_fleet_cells_pending 0",
		`muontrap_sim_insts_per_second_count{scheme="insecure"} `,
		`muontrap_sim_insts_per_second_count{scheme="muontrap"} `,
		`muontrap_fleet_attempt_seconds_count{outcome="ok"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-chaos scrape missing %q:\n%s", want, grepFor(body, "muontrap_fleet"))
		}
	}
	if v := metricValue(body, "muontrap_fleet_migrations_total"); v < 1 {
		t.Errorf("migrations_total = %g, want >= 1", v)
	}
	if v := metricValue(body, "muontrap_fleet_dispatches_total"); v < 3 {
		t.Errorf("dispatches_total = %g, want >= 3 (one per cell)", v)
	}

	// /v1/healthz sources the same Stats snapshot the gauges read.
	resp, err := http.Get(f.hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status         string `json:"status"`
		Workers        int    `json:"workers"`
		SuspectWorkers int    `json:"suspect_workers"`
		DeadWorkersNow int    `json:"dead_workers_now"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Workers != 1 || hz.DeadWorkersNow != 1 {
		t.Errorf("healthz = %+v, want status ok, 1 alive, 1 dead", hz)
	}

	// The trace carries the chaos narrative.
	events := map[string]bool{}
	for _, s := range tracer.Recent(8192) {
		events[s.Event] = true
	}
	for _, want := range []string{"submit", "queue", "dispatch", "worker_dead", "requeue", "merge", "done"} {
		if !events[want] {
			t.Errorf("trace missing %q event (got %v)", want, events)
		}
	}
}

func grepFor(body, substr string) string {
	var out []string
	for _, l := range strings.Split(body, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
