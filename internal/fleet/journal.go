package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/muontrap"
)

// journalVersion versions the fleet journal entry layout. It also enters
// every cache key (matching internal/service's canonical formula), so a
// layout bump invalidates stored results rather than misreading them.
const journalVersion = 1

// journalEntry is one job's durable shard map: the job record, the
// identity flags the shards were keyed under, and every cell with its
// done/pending state and merged result. checkpoint.WriteAtomic keeps
// the file either the old map or the new one, never a torn mix.
type journalEntry struct {
	Version int          `json:"version"`
	Job     muontrap.Job `json:"job"`

	// Identity flags at journaling time. A coordinator restarted under
	// different flags would compute different cells for the same sweep,
	// so a mismatch surfaces the job as non-runnable instead of silently
	// merging results computed under another identity.
	CheckpointEvery int     `json:"checkpoint_every"`
	Warmup          int     `json:"warmup"`
	Scale           float64 `json:"scale"`
	MaxCycles       int     `json:"max_cycles"`

	Cells []CellRecord `json:"cells"`
}

// compatible reports whether the entry was journaled under this
// coordinator's identity flags; the returned message names the first
// mismatch.
func (e *journalEntry) compatible(cfg Config) (bool, string) {
	type flag struct {
		name string
		got  any
		want any
	}
	for _, f := range []flag{
		{"checkpoint-every", e.CheckpointEvery, cfg.CheckpointEvery},
		{"warmup", e.Warmup, cfg.Warmup},
		{"scale", e.Scale, cfg.Scale},
		{"max-cycles", e.MaxCycles, cfg.MaxCycles},
	} {
		if f.got != f.want {
			return false, fmt.Sprintf(
				"journaled under -%s=%v but coordinator runs -%s=%v", f.name, f.got, f.name, f.want)
		}
	}
	return true, ""
}

func (co *Coordinator) jobPath(id string) string {
	return filepath.Join(co.cfg.Dir, "fleet", "jobs", id+".json")
}

// persist journals a job's current shard map. Failures are loud on
// stderr but do not fail the in-memory run: the fleet keeps computing,
// it just loses restart-resume for this job.
func (co *Coordinator) persist(j *fleetJob) {
	if co.cfg.Dir == "" {
		return
	}
	co.mu.Lock()
	e := journalEntry{
		Version: journalVersion, Job: j.rec,
		CheckpointEvery: co.cfg.CheckpointEvery, Warmup: co.cfg.Warmup,
		Scale: co.cfg.Scale, MaxCycles: co.cfg.MaxCycles,
		Cells: make([]CellRecord, 0, len(j.cells)),
	}
	for _, c := range j.cells {
		rec := CellRecord{Key: c.key, Sweep: c.sweep, Indexes: append([]int(nil), c.indexes...), Done: c.done}
		if c.done && len(c.indexes) > 0 && j.results[c.indexes[0]] != nil {
			r := *j.results[c.indexes[0]]
			rec.Result = &r
		}
		e.Cells = append(e.Cells, rec)
	}
	co.mu.Unlock()
	b, err := json.MarshalIndent(&e, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: journaling job %s failed: %v\n", e.Job.ID, err)
		return
	}
	path := co.jobPath(e.Job.ID)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: journal dir unavailable: %v\n", err)
		return
	}
	if err := checkpoint.WriteAtomic(path, b); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: journaling job %s failed: %v\n", e.Job.ID, err)
	}
}

// loadJournal replays the shard maps a previous coordinator process left
// behind: done cells keep their merged results, pending cells of
// unfinished jobs re-enter the dispatch pool with checkpoint-resume
// enabled (any worker's next attempt continues from the latest mirrored
// checkpoint), and jobs that were mid-flight when the process died come
// back as running so dispatch picks them straight up. Unreadable entries
// are skipped loudly; flag-mismatched entries load as non-runnable.
func (co *Coordinator) loadJournal() error {
	if co.cfg.Dir == "" {
		return nil
	}
	dir := filepath.Join(co.cfg.Dir, "fleet", "jobs")
	des, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("fleet: reading journal: %w", err)
	}
	type loaded struct {
		at time.Time
		j  *fleetJob
	}
	var all []loaded
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		path := filepath.Join(dir, de.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: skipping journal entry %s: %v\n", de.Name(), err)
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(b, &e); err != nil || e.Version != journalVersion || e.Job.ID == "" {
			fmt.Fprintf(os.Stderr, "fleet: skipping malformed journal entry %s\n", de.Name())
			continue
		}
		j, err := co.replay(&e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: skipping journal entry %s: %v\n", de.Name(), err)
			continue
		}
		at, _ := time.Parse(time.RFC3339, e.Job.SubmittedAt)
		all = append(all, loaded{at: at, j: j})
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].at.Before(all[b].at) })
	co.mu.Lock()
	for _, l := range all {
		co.registerLocked(l.j)
	}
	co.mu.Unlock()
	return nil
}

// replay rebuilds one job's in-memory shard map from its journal entry.
func (co *Coordinator) replay(e *journalEntry) (*fleetJob, error) {
	j := &fleetJob{
		rec:     e.Job,
		results: make([]*muontrap.RunResult, e.Job.Total),
		subs:    make(map[chan struct{}]struct{}),
	}
	if ok, why := e.compatible(co.cfg); !ok {
		j.incompat = "journal flag mismatch: " + why
		if !j.rec.State.Terminal() {
			j.rec.State = muontrap.JobInterrupted
		}
	}
	done := 0
	for i := range e.Cells {
		rec, err := DecodeCellRecord(mustMarshal(e.Cells[i]))
		if err != nil {
			return nil, err
		}
		c := &cell{
			job: j, key: rec.Key, sweep: rec.Sweep,
			indexes: rec.Indexes, done: rec.Done,
			attempts: make(map[*attempt]struct{}),
		}
		for _, idx := range rec.Indexes {
			if idx >= e.Job.Total {
				return nil, fmt.Errorf("cell %s index %d out of range (total %d)", rec.Key, idx, e.Job.Total)
			}
			if rec.Done {
				r := *rec.Result
				j.results[idx] = &r
				done++
			}
		}
		if !rec.Done {
			// The previous process may have died mid-cell; resume from the
			// latest mirrored checkpoint rather than restarting cold.
			c.resume = true
		}
		j.cells = append(j.cells, c)
	}
	j.rec.Done = done
	if j.incompat == "" && !j.rec.State.Terminal() {
		// The process died with this job open. Requeue it; dispatch marks
		// it running again as soon as a cell lands on a worker.
		j.rec.State = muontrap.JobQueued
		if done == j.rec.Total && j.rec.Total > 0 {
			// Every cell finished but the final persist raced the crash.
			j.rec.State = muontrap.JobDone
			j.rec.FinishedAt = time.Now().UTC().Format(time.RFC3339)
			co.storeResult(j.rec.CacheKey, j.assembleLocked())
		}
	}
	return j, nil
}

// mustMarshal round-trips a CellRecord through its own encoding so
// replay applies exactly the strict wire validation a fresh decode
// would. Marshal of these concrete types cannot fail.
func mustMarshal(v CellRecord) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
