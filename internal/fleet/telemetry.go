package fleet

import (
	"io/fs"
	"path/filepath"
	"time"

	"repro/internal/telemetry"
)

// fleetMetrics is the coordinator's registered metric set. The worker
// and scheduler families are all read-at-scrape functions over the same
// Stats() snapshot /v1/healthz serves — one source of truth, two
// encodings. Only the attempt-latency histograms hold their own state.
// All methods are safe on a nil receiver (metrics off).
type fleetMetrics struct {
	attemptOK     *telemetry.Histogram
	attemptFailed *telemetry.Histogram
}

func newFleetMetrics(reg *telemetry.Registry, co *Coordinator) *fleetMetrics {
	stat := func(read func(Stats) float64) func() float64 {
		return func() float64 { return read(co.Stats()) }
	}
	reg.GaugeFunc("muontrap_fleet_workers_alive",
		"Registered workers currently alive.",
		stat(func(s Stats) float64 { return float64(s.Workers) }))
	reg.GaugeFunc("muontrap_fleet_workers_suspect",
		"Alive workers whose last heartbeat is older than half the timeout.",
		stat(func(s Stats) float64 { return float64(s.SuspectWorkers) }))
	reg.GaugeFunc("muontrap_fleet_workers_dead",
		"Registered workers currently marked dead.",
		stat(func(s Stats) float64 { return float64(s.DeadWorkersNow) }))
	reg.CounterFunc("muontrap_fleet_workers_dead_total",
		"Workers marked dead over the coordinator's life.",
		stat(func(s Stats) float64 { return float64(s.DeadWorkers) }))
	reg.GaugeFunc("muontrap_fleet_jobs_known",
		"Fleet jobs known in any state.",
		stat(func(s Stats) float64 { return float64(s.Jobs) }))
	reg.GaugeFunc("muontrap_fleet_cells_pending",
		"Sweep cells not yet merged.",
		stat(func(s Stats) float64 { return float64(s.CellsPending) }))
	reg.CounterFunc("muontrap_fleet_dispatches_total",
		"Cell attempts started on workers.",
		stat(func(s Stats) float64 { return float64(s.Dispatched) }))
	reg.CounterFunc("muontrap_fleet_migrations_total",
		"Cells re-queued resumable after a worker failure.",
		stat(func(s Stats) float64 { return float64(s.Migrations) }))
	reg.CounterFunc("muontrap_fleet_steals_total",
		"Speculative straggler re-dispatches.",
		stat(func(s Stats) float64 { return float64(s.Steals) }))
	reg.CounterFunc("muontrap_fleet_duplicate_merges_total",
		"Cell completions discarded because the first writer already merged.",
		stat(func(s Stats) float64 { return float64(s.Duplicates) }))
	reg.GaugeFunc("muontrap_fleet_heartbeat_age_seconds",
		"Oldest heartbeat age among alive workers.",
		co.oldestHeartbeatAge)
	reg.GaugeFunc("muontrap_fleet_store_bytes",
		"Bytes held by the shared checkpoint content store.",
		co.storeBytes)
	m := &fleetMetrics{
		attemptOK: reg.Histogram("muontrap_fleet_attempt_seconds",
			"Wall time of one cell attempt on a worker, by outcome.",
			telemetry.DefBuckets(), telemetry.L("outcome", "ok")),
		attemptFailed: reg.Histogram("muontrap_fleet_attempt_seconds",
			"Wall time of one cell attempt on a worker, by outcome.",
			telemetry.DefBuckets(), telemetry.L("outcome", "failed")),
	}
	return m
}

func (m *fleetMetrics) observeAttempt(started time.Time, ok bool) {
	if m == nil {
		return
	}
	sec := time.Since(started).Seconds()
	if ok {
		m.attemptOK.Observe(sec)
	} else {
		m.attemptFailed.Observe(sec)
	}
}

// oldestHeartbeatAge reports the staleness of the most out-of-date
// alive worker, in seconds; 0 with no alive workers.
func (co *Coordinator) oldestHeartbeatAge() float64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	var oldest time.Time
	for _, w := range co.workers {
		if w.dead {
			continue
		}
		if oldest.IsZero() || w.lastSeen.Before(oldest) {
			oldest = w.lastSeen
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest).Seconds()
}

// storeBytes sums the shared checkpoint store's on-disk size; 0 with no
// store. Walked at scrape time — the store holds a handful of pruned
// checkpoint blobs, not an unbounded tree.
func (co *Coordinator) storeBytes() float64 {
	if co.cfg.Dir == "" {
		return 0
	}
	var total int64
	root := filepath.Join(co.cfg.Dir, "fleet", "store")
	_ = filepath.WalkDir(root, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return float64(total)
}

// span emits one fleet lifecycle record; a nil tracer drops it.
func (co *Coordinator) span(s telemetry.Span) { co.trace.Emit(s) }

// cellLabel compresses a cell to its workload/scheme identity for trace
// records (the full cache key is long and opaque).
func cellLabel(c *cell) string {
	if len(c.sweep.Workloads) == 1 && len(c.sweep.Schemes) == 1 {
		sch := string(c.sweep.Schemes[0])
		if sch == "" {
			sch = "insecure"
		}
		return string(c.sweep.Workloads[0]) + "/" + sch
	}
	return c.key[:12]
}
