// Package fleet shards one declarative Sweep across a fleet of muontrapd
// workers and merges the results byte-identically to a single-machine
// run.
//
// The Coordinator serves the same /v1/jobs surface a single daemon does,
// so muontrap/client drives a fleet and a lone daemon with identical
// code. Internally it splits a submitted sweep's resolved cell list into
// single-cell jobs, dispatches them to registered workers (registration
// and heartbeat over HTTP, see Agent), steals cells from stragglers, and
// — when a worker dies mid-cell — re-dispatches the interrupted cell to
// another machine with checkpoint-resume enabled. The migrated run picks
// up from the dead worker's latest mid-run checkpoint, which is
// network-reachable because every worker mirrors its checkpoints into
// the coordinator's HTTP content store (checkpoint.Mirror over
// checkpoint.HTTPStore, same keying as the local store).
//
// Merging is idempotent and declaration-ordered: each cell's result
// lands under its cache key exactly once (a duplicate completion — the
// steal winner and the original both finishing — is counted and
// discarded, never merged twice), and the assembled SweepResult lists
// cells in declaration order regardless of which machine finished which
// cell when. The fleet's answer is byte-identical to Runner.Sweep's.
//
// The coordinator journals its shard map (cells, their done/pending
// state, and per-cell results) under its directory, so a restarted
// coordinator resumes a half-finished sweep without re-running completed
// cells.
package fleet
