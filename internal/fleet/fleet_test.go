package fleet_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/figures"
	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/service/faultinject"
	"repro/muontrap"
	"repro/muontrap/client"
)

// The fleet chaos suite. Every e2e test here follows the same shape:
// compute the single-machine reference table first, reset the process
// run cache, then run the same sweep through an in-process fleet (a
// coordinator plus N worker daemons over httptest) while injecting the
// failure under test — and require the merged fleet table to be
// byte-identical to the reference. Determinism is the oracle: any
// mis-merge, double-merge, lost cell or wrong-checkpoint resume shows
// up as a byte diff.

// cadence is the mid-run checkpoint interval every leg (reference,
// workers, coordinator key) shares — the cadence is part of run
// identity, so the reference must drain at the same cycle counts the
// fleet does.
const cadence = 2000

// testWorker is one in-process worker daemon: a real service.Server
// with a Mirror snapshot store (local disk + the coordinator's HTTP
// content store), fronted by a Switchable so a test can "kill" the
// process by swapping in faultinject.Down.
type testWorker struct {
	name   string
	dir    string
	srv    *service.Server
	swit   *faultinject.Switchable
	hs     *httptest.Server
	agent  *fleet.Agent
	remote *checkpoint.HTTPStore
	dead   bool
}

// snapDir is where the worker's local mid-run checkpoint refs land.
func (w *testWorker) snapDir() string { return filepath.Join(w.dir, "snapshots") }

// kill simulates SIGKILL of the worker process: the HTTP front answers
// like a dead machine, the heartbeat stops, and the service is closed —
// which cancels its in-flight simulations exactly as process death
// would (and, in-process, releases their run-cache entries so a
// migrated attempt on another worker re-simulates instead of waiting on
// the corpse).
func (w *testWorker) kill() {
	if w.dead {
		return
	}
	w.dead = true
	w.swit.Swap(faultinject.Down)
	w.agent.Close()
	w.srv.Close()
}

type testFleet struct {
	t       *testing.T
	dir     string
	cfg     fleet.Config
	co      *fleet.Coordinator
	hs      *httptest.Server
	client  *client.Client
	workers []*testWorker
}

// newTestFleet boots a coordinator and n workers and waits until every
// worker is registered and alive.
func newTestFleet(t *testing.T, n int, cfg fleet.Config) *testFleet {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = cadence
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 500 * time.Millisecond
	}
	co, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(co)
	t.Cleanup(func() {
		hs.Close()
		co.Close()
	})
	f := &testFleet{t: t, dir: cfg.Dir, cfg: cfg, co: co, hs: hs, client: client.New(hs.URL)}
	for i := 0; i < n; i++ {
		f.addWorker()
	}
	f.waitWorkers(n)
	return f
}

// addWorker boots one worker daemon and joins it to the fleet.
func (f *testFleet) addWorker() *testWorker {
	f.t.Helper()
	dir := f.t.TempDir()
	remote := checkpoint.NewHTTPStore(f.hs.URL+fleet.StorePath, nil)
	local, err := checkpoint.NewStore(filepath.Join(dir, "snapshots"))
	if err != nil {
		f.t.Fatal(err)
	}
	srv, err := service.New(service.Config{
		Dir:             dir,
		CheckpointEvery: f.cfg.CheckpointEvery,
		Scale:           f.cfg.Scale,
		MaxCycles:       f.cfg.MaxCycles,
		Warmup:          f.cfg.Warmup,
		SnapStore:       &checkpoint.Mirror{Local: local, Remote: remote},
	})
	if err != nil {
		f.t.Fatal(err)
	}
	swit := faultinject.NewSwitchable(srv)
	hs := httptest.NewServer(swit)
	w := &testWorker{
		name: "w" + string(rune('0'+len(f.workers))), dir: dir,
		srv: srv, swit: swit, hs: hs, remote: remote,
	}
	agent, err := fleet.StartAgent(fleet.AgentConfig{
		Coordinator: f.hs.URL,
		Name:        w.name,
		BaseURL:     hs.URL,
		Interval:    100 * time.Millisecond,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	w.agent = agent
	f.t.Cleanup(func() {
		if !w.dead {
			agent.Close()
			srv.Close()
		}
		hs.Close()
	})
	f.workers = append(f.workers, w)
	return w
}

// waitWorkers blocks until the coordinator reports n alive workers.
func (f *testFleet) waitWorkers(n int) {
	f.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, ws := range f.co.Workers() {
			if ws.Alive {
				alive++
			}
		}
		if alive >= n {
			return
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("only %d of %d workers registered in time", alive, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// remoteFetches sums checkpoint downloads from the coordinator's
// content store across all workers — the witness that a migrated cell
// really resumed from a shipped checkpoint.
func (f *testFleet) remoteFetches() uint64 {
	var n uint64
	for _, w := range f.workers {
		n += w.remote.Fetches()
	}
	return n
}

// marshal renders a SweepResult to the canonical JSON the wire uses.
func marshal(t *testing.T, res *muontrap.SweepResult) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// hasRef reports whether a snapshot store directory holds any
// latest-checkpoint ref file (mid-run refs are unlinked when their run
// completes, so a ref implies an in-flight checkpointed run).
func hasRef(snapDir string) bool {
	ents, err := os.ReadDir(snapDir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".ref") {
			return true
		}
	}
	return false
}

// fig4Sweep is the paper's Figure 4 matrix shape — Parsec kernels under
// the six golden protection schemes — cut to two kernels and the
// harness test scale, exactly as the transport determinism suite uses.
func fig4Sweep() muontrap.Sweep {
	return muontrap.Sweep{
		Workloads: []muontrap.Workload{"swaptions", "blackscholes"},
		Schemes: []muontrap.Scheme{
			"insecure", "muontrap", "invisispec-spectre", "invisispec-future",
			"stt-spectre", "stt-future",
		},
		Scales: []float64{0.02},
	}
}

// reference computes the single-machine answer for sw on a lone daemon
// sharing the fleet's identity flags, then resets the process run cache
// so the fleet leg simulates from scratch.
func reference(t *testing.T, sw muontrap.Sweep) *muontrap.SweepResult {
	t.Helper()
	figures.ResetRunCache()
	srv, err := service.New(service.Config{
		Dir:             t.TempDir(),
		CheckpointEvery: cadence,
		Workers:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	ref, err := client.New(hs.URL).Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	figures.ResetRunCache()
	return ref
}

// TestFleetChaosKillWorkerMidCell is the headline chaos gate: a
// three-worker fleet runs the Figure-4-shaped sweep; one worker is
// killed mid-cell, after its first mid-run checkpoint ref lands; the
// interrupted cell must migrate to a surviving machine, resume from the
// checkpoint the dead worker mirrored into the coordinator's content
// store, and the merged fleet table must be byte-identical to the
// uninterrupted single-machine reference.
func TestFleetChaosKillWorkerMidCell(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation")
	}
	defer figures.ResetRunCache()
	sw := fig4Sweep()
	ref := reference(t, sw)

	f := newTestFleet(t, 3, fleet.Config{})
	job, err := f.client.Submit(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}

	// Kill worker 0 the moment its first mid-run checkpoint ref lands:
	// the Mirror writes remote-then-local, so a local ref guarantees the
	// checkpoint is already in the coordinator's store — the kill cannot
	// outrace the ship.
	victim := f.workers[0]
	deadline := time.Now().Add(2 * time.Minute)
	for !hasRef(victim.snapDir()) {
		if time.Now().After(deadline) {
			t.Fatal("no mid-run checkpoint ref appeared on the victim before the kill deadline")
		}
		if j, err := f.client.Job(context.Background(), job.ID); err == nil && j.State.Terminal() {
			t.Fatalf("job reached %s before the victim ever checkpointed", j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.kill()

	final, err := f.client.Stream(context.Background(), job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != muontrap.JobDone {
		t.Fatalf("fleet job ended %s (%s), want done", final.State, final.Error)
	}
	got, err := f.client.Result(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, got)) != string(marshal(t, ref)) {
		t.Fatalf("fleet table differs from single-machine reference:\nfleet: %s\nref:   %s",
			marshal(t, got), marshal(t, ref))
	}

	st := f.co.Stats()
	if st.Migrations == 0 {
		t.Fatal("worker killed mid-cell but the coordinator recorded no cell migration")
	}
	if st.DeadWorkers == 0 {
		t.Fatal("worker killed but the coordinator never marked it dead")
	}
	if f.remoteFetches() == 0 {
		t.Fatal("cell migrated but no checkpoint was fetched from the coordinator's content store")
	}
}

// TestFleetSweepMatchesSingleMachine pins the failure-free path: a
// healthy three-worker fleet must merge the Figure-4 sweep
// byte-identically to a single machine, in declaration order, with a
// born-done answer on resubmission.
func TestFleetSweepMatchesSingleMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation")
	}
	defer figures.ResetRunCache()
	sw := fig4Sweep()
	ref := reference(t, sw)

	f := newTestFleet(t, 3, fleet.Config{})
	got, err := f.client.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, got)) != string(marshal(t, ref)) {
		t.Fatalf("fleet table differs from single-machine reference:\nfleet: %s\nref:   %s",
			marshal(t, got), marshal(t, ref))
	}

	// Resubmission is answered born-done from the coordinator's own
	// content-keyed result store — no worker simulates anything.
	before := f.co.Stats().Dispatched
	again, err := f.client.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, again)) != string(marshal(t, ref)) {
		t.Fatal("born-done resubmission differs from the reference table")
	}
	if after := f.co.Stats().Dispatched; after != before {
		t.Fatalf("born-done resubmission dispatched %d cells, want 0", after-before)
	}
}
