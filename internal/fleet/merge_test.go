package fleet

import (
	"context"
	"testing"
	"time"

	"repro/muontrap"
)

// inertCoordinator builds a coordinator whose scheduler never acts on
// its own (hour-scale tick and timeouts, no workers registered), so a
// test can drive the attempt lifecycle by hand.
func inertCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	co, err := New(Config{
		Dir:              t.TempDir(),
		CheckpointEvery:  2000,
		HeartbeatTimeout: time.Hour,
		Tick:             time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// openAttempt wires a hand-made attempt into a cell exactly as
// startAttemptLocked would, minus the poller goroutine.
func openAttempt(co *Coordinator, c *cell, w *worker) *attempt {
	ctx, cancel := context.WithCancel(context.Background())
	a := &attempt{w: w, c: c, ctx: ctx, cancel: cancel, started: time.Now()}
	co.mu.Lock()
	c.attempts[a] = struct{}{}
	w.inflight++
	co.mu.Unlock()
	return a
}

func run(cycles uint64) *muontrap.SweepResult {
	return &muontrap.SweepResult{Runs: []muontrap.RunResult{{
		Workload: "swaptions", Scheme: "muontrap", Scale: 0.02,
		Result: muontrap.Result{Cycles: cycles, Instructions: cycles * 2},
	}}}
}

// TestMergeDuplicateCompletionIdempotent is the satellite regression
// for the steal/migration race: when two attempts of the same cell both
// finish — the steal winner and the original, or a migrated re-dispatch
// and a worker wrongly presumed dead — the first completion wins the
// merge by cache key and the second is discarded with a counter, never
// merged. The job's table must carry the first writer's run untouched.
func TestMergeDuplicateCompletionIdempotent(t *testing.T) {
	co := inertCoordinator(t)
	sw := muontrap.Sweep{
		Workloads: []muontrap.Workload{"swaptions"},
		Schemes:   []muontrap.Scheme{"muontrap"},
		Scales:    []float64{0.02},
	}
	rec, cached, err := co.submit(sw, "", false)
	if err != nil || cached {
		t.Fatalf("submit: cached=%v err=%v", cached, err)
	}
	co.mu.Lock()
	j := co.jobs[rec.ID]
	c := j.cells[0]
	co.mu.Unlock()

	w1 := &worker{id: "w1"}
	w2 := &worker{id: "w2"}
	a1 := openAttempt(co, c, w1)
	a2 := openAttempt(co, c, w2)

	co.attemptDone(a1, run(1111))
	co.attemptDone(a2, run(2222)) // the duplicate: same cell, later finish

	co.mu.Lock()
	defer co.mu.Unlock()
	if j.rec.State != muontrap.JobDone {
		t.Fatalf("job state %s, want done", j.rec.State)
	}
	if got := j.results[0].Cycles; got != 1111 {
		t.Fatalf("merged run has %d cycles: the duplicate overwrote the first writer (want 1111)", got)
	}
	if co.stats.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", co.stats.Duplicates)
	}
	if w1.inflight != 0 || w2.inflight != 0 {
		t.Fatalf("worker slots not released: w1=%d w2=%d", w1.inflight, w2.inflight)
	}
	if len(c.attempts) != 0 {
		t.Fatalf("%d attempts still open on a merged cell", len(c.attempts))
	}
}

// TestMergeDuplicateAfterSiblingCancel pins the narrower race inside
// the same regression: the winner's merge closes the sibling attempt
// moments before the sibling's own completion lands. The late
// completion arrives on an already-closed attempt and must still be
// counted and discarded — not dropped silently, and above all not
// merged.
func TestMergeDuplicateAfterSiblingCancel(t *testing.T) {
	co := inertCoordinator(t)
	sw := muontrap.Sweep{
		Workloads: []muontrap.Workload{"blackscholes"},
		Schemes:   []muontrap.Scheme{"stt-spectre"},
		Scales:    []float64{0.02},
	}
	rec, _, err := co.submit(sw, "", false)
	if err != nil {
		t.Fatal(err)
	}
	co.mu.Lock()
	j := co.jobs[rec.ID]
	c := j.cells[0]
	co.mu.Unlock()

	w1 := &worker{id: "w1"}
	w2 := &worker{id: "w2"}
	a1 := openAttempt(co, c, w1)
	a2 := openAttempt(co, c, w2)

	co.attemptDone(a1, run(1111)) // winner merges and closes a2
	co.mu.Lock()
	if !a2.closed {
		co.mu.Unlock()
		t.Fatal("winner's merge did not close the sibling attempt")
	}
	co.mu.Unlock()

	co.attemptDone(a2, run(2222)) // sibling's completion raced the cancel

	co.mu.Lock()
	defer co.mu.Unlock()
	if got := j.results[0].Cycles; got != 1111 {
		t.Fatalf("late duplicate overwrote the merge: %d cycles, want 1111", got)
	}
	if co.stats.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", co.stats.Duplicates)
	}
}
