package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// AgentConfig wires one worker daemon into a fleet.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:7070").
	Coordinator string
	// Name identifies this worker in listings (hostname, typically).
	Name string
	// BaseURL is the address the COORDINATOR dials this worker's /v1/jobs
	// surface at — it must be reachable from the coordinator's network
	// position, not merely from this machine (the -advertise flag).
	BaseURL string
	// Interval is the heartbeat cadence (0 = 1s). The coordinator's
	// HeartbeatTimeout should be a small multiple of it.
	Interval time.Duration
	// Client overrides the HTTP client (0-value = 10s timeout default).
	Client *http.Client
}

// Agent keeps one worker registered with a coordinator: it registers on
// start, heartbeats at the configured cadence, and re-registers whenever
// the coordinator answers 404 — the signal that the coordinator
// restarted or gave this worker up for dead while it was partitioned.
type Agent struct {
	cfg    AgentConfig
	hc     *http.Client
	ctx    context.Context
	stop   context.CancelFunc
	wg     sync.WaitGroup
	mu     sync.Mutex
	id     string
	reregs int
}

// StartAgent registers the worker and starts the heartbeat loop. The
// initial registration is synchronous so a returned Agent is already
// dispatchable; later re-registrations happen inside the loop.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	ctx, stop := context.WithCancel(context.Background())
	a := &Agent{cfg: cfg, hc: hc, ctx: ctx, stop: stop}
	if err := a.register(); err != nil {
		stop()
		return nil, err
	}
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

// Close stops heartbeating. The coordinator notices via heartbeat
// timeout, exactly as it would a crash — there is deliberately no
// graceful deregister: the chaos suite depends on kill and Close being
// indistinguishable upstream.
func (a *Agent) Close() {
	a.stop()
	a.wg.Wait()
}

// WorkerID returns the coordinator-assigned identity (it changes on
// re-registration).
func (a *Agent) WorkerID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.id
}

// Reregistrations counts how many times the agent had to re-register
// after the initial one.
func (a *Agent) Reregistrations() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reregs
}

func (a *Agent) loop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.ctx.Done():
			return
		case <-t.C:
		}
		ok, err := a.heartbeat()
		if err != nil {
			continue // coordinator unreachable; keep trying
		}
		if !ok {
			if err := a.register(); err == nil {
				a.mu.Lock()
				a.reregs++
				a.mu.Unlock()
			}
		}
	}
}

func (a *Agent) post(path string, v any) (*http.Response, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(a.ctx, http.MethodPost,
		strings.TrimRight(a.cfg.Coordinator, "/")+path, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return a.hc.Do(req)
}

func (a *Agent) register() error {
	resp, err := a.post("/fleet/v1/register", RegisterRequest{Name: a.cfg.Name, BaseURL: a.cfg.BaseURL})
	if err != nil {
		return fmt.Errorf("fleet: registering with %s: %w", a.cfg.Coordinator, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: registering with %s: %s: %s", a.cfg.Coordinator, resp.Status, bytes.TrimSpace(body))
	}
	var rr RegisterResponse
	if err := json.Unmarshal(body, &rr); err != nil || rr.WorkerID == "" {
		return fmt.Errorf("fleet: registering with %s: malformed response", a.cfg.Coordinator)
	}
	a.mu.Lock()
	a.id = rr.WorkerID
	a.mu.Unlock()
	return nil
}

// heartbeat returns (false, nil) when the coordinator disowned this
// worker (404) and a re-registration is needed.
func (a *Agent) heartbeat() (bool, error) {
	resp, err := a.post("/fleet/v1/heartbeat", HeartbeatRequest{WorkerID: a.WorkerID()})
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return false, nil
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return true, nil
	default:
		return false, fmt.Errorf("fleet: heartbeat: %s", resp.Status)
	}
}
