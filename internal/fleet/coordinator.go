package fleet

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/figures"
	"repro/internal/telemetry"
	"repro/muontrap"
	"repro/muontrap/client"
)

// Config sizes a fleet coordinator. Scale, MaxCycles, Warmup and
// CheckpointEvery are the run-identity flags and MUST match every
// worker's configuration: workers key results and checkpoints by them,
// so a mismatched fleet would compute under one identity and journal
// under another.
type Config struct {
	// Dir is the coordinator's state root: the job journal under
	// Dir/fleet/jobs, completed sweep results under Dir/fleet/sweeps, and
	// the shared checkpoint content store under Dir/fleet/store. Empty
	// disables persistence (and with it coordinator-restart resume and
	// checkpoint migration — workers have nowhere shared to mirror to).
	Dir string
	// Scale, MaxCycles, Warmup, CheckpointEvery mirror the corresponding
	// worker daemon flags (0 = library default). They enter every cell's
	// cache key exactly as internal/service computes it.
	Scale           float64
	MaxCycles       int
	Warmup          int
	CheckpointEvery int
	// HeartbeatTimeout marks a worker dead when no heartbeat arrives
	// within it (0 = 5s). Dead workers' in-flight cells re-dispatch with
	// checkpoint-resume enabled.
	HeartbeatTimeout time.Duration
	// StealAfter enables straggler stealing: a cell in flight on exactly
	// one worker for longer than this is speculatively dispatched to a
	// second, idle worker; the first completion wins the merge. Zero
	// disables stealing.
	StealAfter time.Duration
	// PerWorker caps concurrently dispatched cells per worker (0 = 1,
	// matching a default worker's one-sweep-at-a-time runner pool).
	PerWorker int
	// PollInterval is the cadence at which attempt goroutines poll their
	// worker's job status (0 = 250ms).
	PollInterval time.Duration
	// Tick bounds how long scheduling work (dead-worker sweeps, steals)
	// can sit waiting when no completion wakes the scheduler (0 = 100ms).
	Tick time.Duration
	// WorkerRetries is the retry budget of the coordinator's per-worker
	// HTTP clients (0 = 2).
	WorkerRetries int
	// WorkerFailLimit marks a worker dead after this many consecutive
	// failed attempts against it (0 = 3) — the fast-path death signal for
	// a worker whose process died but whose heartbeat entry has not yet
	// timed out, and for one whose agent outlived its daemon.
	WorkerFailLimit int
	// Metrics, when non-nil, registers the fleet's metric series on it
	// and mounts the registry at GET /metrics.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives a structured span per cell
	// lifecycle edge (submit, queue, dispatch, steal, requeue, merge,
	// duplicate, worker_dead, done, failed).
	Tracer *telemetry.Tracer
}

// Stats is the coordinator's observability surface: the /v1/healthz
// payload, and the source the /metrics worker/scheduler families read
// at scrape time — both views come from this one snapshot.
type Stats struct {
	Workers int `json:"workers"` // registered and alive
	// SuspectWorkers counts alive workers whose last heartbeat is older
	// than half the timeout — still served, but next in line to be
	// declared dead if silence continues.
	SuspectWorkers int    `json:"suspect_workers"`
	DeadWorkersNow int    `json:"dead_workers_now"` // currently registered and dead
	DeadWorkers    uint64 `json:"dead_workers"`     // marked dead over the coordinator's life
	Jobs           int    `json:"jobs"`             // jobs known, all states
	CellsPending   int    `json:"cells_pending"`    // cells not yet merged
	Dispatched     uint64 `json:"dispatched"`       // attempts started
	Migrations     uint64 `json:"migrations"`       // cells re-queued after a worker failure
	Steals         uint64 `json:"steals"`           // speculative straggler dispatches
	Duplicates     uint64 `json:"duplicates"`       // completions discarded at merge (first writer won)
}

// worker is one registered fleet member.
type worker struct {
	id       string
	name     string
	base     string
	client   *client.Client
	lastSeen time.Time
	dead     bool
	inflight int
	fails    int // consecutive failed attempts; reset on success
}

// attempt is one dispatch of one cell to one worker.
type attempt struct {
	w        *worker
	c        *cell
	resume   bool
	ctx      context.Context
	cancel   context.CancelFunc
	remoteID string // worker-side job ID, once known
	closed   bool   // guarded by Coordinator.mu; true once settled
	started  time.Time
}

// cell is one resolved (workload, scheme, scale) unit of a sweep: the
// unit of dispatch, migration, stealing and merge.
type cell struct {
	job      *fleetJob
	key      string         // content cache key — the merge identity
	sweep    muontrap.Sweep // the single-cell sub-sweep workers run
	indexes  []int          // declaration positions this cell fills
	resume   bool           // next dispatch passes resume (migration path)
	done     bool
	attempts map[*attempt]struct{} // open attempts
}

// fleetJob is one submitted sweep and its shard map.
type fleetJob struct {
	rec      muontrap.Job
	cells    []*cell
	results  []*muontrap.RunResult // per declaration index
	incompat string                // journal replayed under mismatched flags; never scheduled

	// SSE state: frames holds every published progress frame (bounded by
	// Total, which is small); subs are poke channels of live streams.
	frames []streamFrame
	subs   map[chan struct{}]struct{}
}

type streamFrame struct {
	id   uint64
	name string
	data []byte
}

// Coordinator shards sweeps across registered workers. It implements
// http.Handler: the public /v1/jobs surface (wire-compatible with a
// single muontrapd, so muontrap/client drives both identically) plus the
// /fleet/v1/* control plane (register, heartbeat, workers, and the
// shared checkpoint content store).
type Coordinator struct {
	cfg   Config
	mux   *http.ServeMux
	store *checkpoint.Store // shared checkpoint store (nil when Dir == "")
	met   *fleetMetrics     // nil = metrics off
	trace *telemetry.Tracer // nil = tracing off

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup
	wake chan struct{}

	mu      sync.Mutex
	workers map[string]*worker
	jobs    map[string]*fleetJob
	order   []string
	stats   Stats
}

// New builds a Coordinator and, when cfg.Dir is set, opens the shared
// checkpoint store and replays the job journal: done cells stay done,
// pending cells of unfinished jobs re-enter the dispatch pool with
// checkpoint-resume enabled.
func New(cfg Config) (*Coordinator, error) {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.PerWorker <= 0 {
		cfg.PerWorker = 1
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.WorkerRetries <= 0 {
		cfg.WorkerRetries = 2
	}
	if cfg.WorkerFailLimit <= 0 {
		cfg.WorkerFailLimit = 3
	}
	ctx, stop := context.WithCancel(context.Background())
	co := &Coordinator{
		cfg:     cfg,
		trace:   cfg.Tracer,
		ctx:     ctx,
		stop:    stop,
		wake:    make(chan struct{}, 1),
		workers: make(map[string]*worker),
		jobs:    make(map[string]*fleetJob),
	}
	if cfg.Metrics != nil {
		co.met = newFleetMetrics(cfg.Metrics, co)
	}
	if cfg.Dir != "" {
		st, err := checkpoint.NewStore(filepath.Join(cfg.Dir, "fleet", "store"))
		if err != nil {
			stop()
			return nil, fmt.Errorf("fleet: checkpoint store: %w", err)
		}
		co.store = st
	}
	co.routes()
	if err := co.loadJournal(); err != nil {
		stop()
		return nil, err
	}
	co.wg.Add(1)
	go co.loop()
	return co, nil
}

// StorePath returns the URL path prefix the shared checkpoint store is
// served under; workers point their checkpoint.HTTPStore at
// coordinatorBase + StorePath.
const StorePath = "/fleet/v1/store"

// Close stops the scheduler and every attempt poller and waits for them.
// Like a worker daemon's kill, it journals nothing extra: the shard map
// on disk already records exactly which cells finished, which is all a
// restarted coordinator needs.
func (co *Coordinator) Close() {
	co.stop()
	co.mu.Lock()
	for _, j := range co.jobs {
		for _, c := range j.cells {
			for a := range c.attempts {
				a.cancel()
			}
		}
	}
	co.mu.Unlock()
	co.wg.Wait()
}

// Stats snapshots the coordinator's counters.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := co.stats
	now := time.Now()
	for _, w := range co.workers {
		if w.dead {
			st.DeadWorkersNow++
			continue
		}
		st.Workers++
		if now.Sub(w.lastSeen) > co.cfg.HeartbeatTimeout/2 {
			st.SuspectWorkers++
		}
	}
	st.Jobs = len(co.jobs)
	for _, j := range co.jobs {
		for _, c := range j.cells {
			if !c.done && !j.rec.State.Terminal() {
				st.CellsPending++
			}
		}
	}
	return st
}

// kick wakes the scheduler without blocking.
func (co *Coordinator) kick() {
	select {
	case co.wake <- struct{}{}:
	default:
	}
}

// loop is the scheduler: a single goroutine that reacts to completions
// (kick) and to time (tick: heartbeat expiry, straggler age).
func (co *Coordinator) loop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-co.ctx.Done():
			return
		case <-co.wake:
		case <-t.C:
		}
		co.schedule()
	}
}

// schedule is one scheduler pass: expire dead workers, dispatch pending
// cells, steal from stragglers.
func (co *Coordinator) schedule() {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := time.Now()
	for _, w := range co.workers {
		if !w.dead && now.Sub(w.lastSeen) > co.cfg.HeartbeatTimeout {
			co.markWorkerDeadLocked(w)
		}
	}
	co.dispatchLocked(now)
	co.stealLocked(now)
}

// markWorkerDeadLocked retires a worker: its open attempts are settled
// and their unfinished cells re-enter the pool with resume enabled, so
// the next dispatch continues from the dead machine's last mirrored
// checkpoint. Callers hold co.mu.
func (co *Coordinator) markWorkerDeadLocked(w *worker) {
	if w.dead {
		return
	}
	w.dead = true
	co.stats.DeadWorkers++
	co.span(telemetry.Span{Event: "worker_dead", Worker: w.id, Detail: w.name})
	for _, j := range co.jobs {
		for _, c := range j.cells {
			for a := range c.attempts {
				if a.w == w {
					co.closeAttemptLocked(a)
					co.requeueCellLocked(c)
				}
			}
		}
	}
}

// closeAttemptLocked settles an attempt: removed from its cell, its
// worker's slot freed, its poller cancelled. Idempotent. Callers hold
// co.mu.
func (co *Coordinator) closeAttemptLocked(a *attempt) {
	if a.closed {
		return
	}
	a.closed = true
	delete(a.c.attempts, a)
	a.w.inflight--
	a.cancel()
}

// requeueCellLocked returns an unfinished cell with no open attempts to
// the dispatch pool, flagged to resume from its latest mirrored
// checkpoint. Callers hold co.mu.
func (co *Coordinator) requeueCellLocked(c *cell) {
	if c.done || len(c.attempts) > 0 || c.job.rec.State.Terminal() {
		return
	}
	c.resume = true
	co.stats.Migrations++
	co.span(telemetry.Span{
		Event: "requeue", Job: c.job.rec.ID, Cell: cellLabel(c),
		Detail: "re-queued resumable after worker failure",
	})
}

// schedulable reports whether a job's cells may be dispatched.
func (j *fleetJob) schedulable() bool {
	return !j.rec.State.Terminal() && j.incompat == ""
}

// dispatchLocked hands every pending cell to the least-loaded alive
// worker with capacity, interactive jobs first. Callers hold co.mu.
func (co *Coordinator) dispatchLocked(now time.Time) {
	for _, class := range []muontrap.Priority{muontrap.PriorityInteractive, muontrap.PriorityBulk} {
		for _, id := range co.order {
			j := co.jobs[id]
			if !j.schedulable() || j.rec.Priority != class {
				continue
			}
			for _, c := range j.cells {
				if c.done || len(c.attempts) > 0 {
					continue
				}
				w := co.pickWorkerLocked(nil)
				if w == nil {
					return // no capacity anywhere; later cells need none either
				}
				co.startAttemptLocked(c, w, now)
			}
		}
	}
}

// stealLocked speculatively re-dispatches straggling cells: one open
// attempt, older than StealAfter, with an idle worker available that is
// not the one already running it. First completion wins the merge.
// Callers hold co.mu.
func (co *Coordinator) stealLocked(now time.Time) {
	if co.cfg.StealAfter <= 0 {
		return
	}
	for _, id := range co.order {
		j := co.jobs[id]
		if !j.schedulable() {
			continue
		}
		for _, c := range j.cells {
			if c.done || len(c.attempts) != 1 {
				continue
			}
			var cur *attempt
			for a := range c.attempts {
				cur = a
			}
			if now.Sub(cur.started) < co.cfg.StealAfter {
				continue
			}
			w := co.pickWorkerLocked(cur.w)
			if w == nil || w.inflight > 0 {
				continue // steal only onto an idle machine
			}
			co.stats.Steals++
			co.span(telemetry.Span{
				Event: "steal", Job: j.rec.ID, Cell: cellLabel(c), Worker: w.id,
				Seconds: now.Sub(cur.started).Seconds(),
				Detail:  "straggling on " + cur.w.id,
			})
			co.startAttemptLocked(c, w, now)
		}
	}
}

// pickWorkerLocked returns the alive worker with the most free capacity
// (ties broken by id for determinism), excluding not. Nil when no alive
// worker has capacity. Callers hold co.mu.
func (co *Coordinator) pickWorkerLocked(not *worker) *worker {
	var best *worker
	for _, w := range co.workers {
		if w.dead || w == not || w.inflight >= co.cfg.PerWorker {
			continue
		}
		if best == nil || w.inflight < best.inflight || (w.inflight == best.inflight && w.id < best.id) {
			best = w
		}
	}
	return best
}

// startAttemptLocked dispatches one cell to one worker. Callers hold
// co.mu.
func (co *Coordinator) startAttemptLocked(c *cell, w *worker, now time.Time) {
	ctx, cancel := context.WithCancel(co.ctx)
	a := &attempt{
		w: w, c: c, resume: c.resume,
		ctx: ctx, cancel: cancel, started: now,
	}
	c.attempts[a] = struct{}{}
	w.inflight++
	co.stats.Dispatched++
	detail := ""
	if a.resume {
		detail = "resume"
	}
	co.span(telemetry.Span{
		Event: "dispatch", Job: c.job.rec.ID, Cell: cellLabel(c),
		Worker: w.id, Detail: detail,
	})
	if c.job.rec.State == muontrap.JobQueued {
		c.job.rec.State = muontrap.JobRunning
	}
	co.wg.Add(1)
	go co.runAttempt(a)
}

// runAttempt drives one dispatch to its outcome: submit the single-cell
// sweep to the worker (with resume when the cell migrated), poll the
// remote job to a terminal state, fetch the result, and settle.
func (co *Coordinator) runAttempt(a *attempt) {
	defer co.wg.Done()
	defer a.cancel()
	var opts []client.SubmitOption
	if a.resume {
		opts = append(opts, client.WithResume())
	}
	if a.c.job.rec.Priority == muontrap.PriorityInteractive {
		opts = append(opts, client.WithPriority(muontrap.PriorityInteractive))
	}
	job, err := a.w.client.Submit(a.ctx, a.c.sweep, opts...)
	if err != nil {
		co.attemptFailed(a, err)
		return
	}
	co.mu.Lock()
	a.remoteID = job.ID
	co.mu.Unlock()
	for !job.State.Terminal() {
		select {
		case <-a.ctx.Done():
			co.attemptFailed(a, a.ctx.Err())
			return
		case <-time.After(co.cfg.PollInterval):
		}
		job, err = a.w.client.Job(a.ctx, job.ID)
		if err != nil {
			co.attemptFailed(a, err)
			return
		}
	}
	switch job.State {
	case muontrap.JobDone:
		res, err := a.w.client.Result(a.ctx, job.ID)
		if err != nil {
			co.attemptFailed(a, err)
			return
		}
		co.attemptDone(a, res)
	case muontrap.JobFailed:
		co.attemptJobFailed(a, job.Error)
	default:
		// Cancelled or interrupted on the worker (restart, preemption by
		// local traffic): not an outcome — re-dispatch resumable.
		co.attemptFailed(a, fmt.Errorf("worker job %s ended %s", job.ID, job.State))
	}
}

// attemptFailed settles a failed attempt: the cell re-enters the pool
// resumable, and a worker accumulating consecutive failures is marked
// dead without waiting out its heartbeat — the fast path for a machine
// that died with its TCP port, or whose agent outlived its daemon.
func (co *Coordinator) attemptFailed(a *attempt, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if a.closed {
		return // settled elsewhere (duplicate cancel, dead-worker sweep)
	}
	co.closeAttemptLocked(a)
	if errors.Is(err, context.Canceled) && co.ctx.Err() != nil {
		return // coordinator shutting down; leave the shard map as-is
	}
	co.met.observeAttempt(a.started, false)
	a.w.fails++
	if a.w.fails >= co.cfg.WorkerFailLimit {
		co.markWorkerDeadLocked(a.w)
	}
	co.requeueCellLocked(a.c)
	co.kick()
}

// attemptDone settles a successful attempt: the first completion of a
// cell merges, any later one is discarded with a counter — the merge is
// idempotent by cache key, so a steal winner and the original finishing
// both can never corrupt the table.
func (co *Coordinator) attemptDone(a *attempt, res *muontrap.SweepResult) {
	co.mu.Lock()
	c := a.c
	if !a.closed {
		co.closeAttemptLocked(a)
		a.w.fails = 0
		co.met.observeAttempt(a.started, true)
	}
	if c.done || c.job.rec.State.Terminal() {
		// First writer already won this cell's merge (the check runs even
		// for attempts the winner closed moments ago — a straggler's
		// completion can race the winner's sibling-cancel): the duplicate
		// is counted and discarded, never merged twice.
		co.stats.Duplicates++
		co.span(telemetry.Span{
			Event: "duplicate", Job: c.job.rec.ID, Cell: cellLabel(c), Worker: a.w.id,
			Detail: "completion discarded; first writer already merged",
		})
		co.mu.Unlock()
		co.kick()
		return
	}
	if res == nil || len(res.Runs) != 1 {
		// Cells are single-cell sweeps by construction.
		n := 0
		if res != nil {
			n = len(res.Runs)
		}
		co.mu.Unlock()
		co.failJob(c.job, fmt.Sprintf("fleet: worker %s returned %d runs for a single-cell sweep", a.w.id, n))
		return
	}
	co.span(telemetry.Span{
		Event: "merge", Job: c.job.rec.ID, Cell: cellLabel(c), Worker: a.w.id,
		Seconds: time.Since(a.started).Seconds(),
	})
	co.mergeCellLocked(c, res.Runs[0])
	// A slower sibling attempt (straggler being stolen from) is now moot:
	// stop polling it and best-effort cancel the remote job.
	for sib := range c.attempts {
		co.closeAttemptLocked(sib)
		co.cancelRemote(sib)
	}
	j := c.job
	co.mu.Unlock()
	co.persist(j)
	co.kick()
}

// mergeCellLocked records a cell's first completion: its run fills every
// declaration index the cell covers, a progress frame is published per
// index, and a job whose last cell just landed is finalized. Callers
// hold co.mu.
func (co *Coordinator) mergeCellLocked(c *cell, run muontrap.RunResult) {
	c.done = true
	j := c.job
	for _, idx := range c.indexes {
		r := run
		j.results[idx] = &r
	}
	j.rec.Done = 0
	for _, r := range j.results {
		if r != nil {
			j.rec.Done++
		}
	}
	for range c.indexes {
		// Frame ids are sequential in completion order — cells land in
		// whatever order machines finish them — and the retained window is
		// the whole job (bounded by Total, which is small), so any
		// Last-Event-ID cursor replays exactly the missed tail.
		id := uint64(len(j.frames)) + 1
		data, err := json.Marshal(muontrap.Progress{Done: int(id), Total: j.rec.Total, Run: run})
		if err == nil {
			j.frames = append(j.frames, streamFrame{id: id, name: "progress", data: data})
		}
	}
	if j.rec.Done == j.rec.Total {
		j.rec.State = muontrap.JobDone
		j.rec.FinishedAt = time.Now().UTC().Format(time.RFC3339)
		co.storeResult(j.rec.CacheKey, j.assembleLocked())
		co.span(telemetry.Span{Event: "done", Job: j.rec.ID})
	}
	j.pokeLocked()
}

// assembleLocked builds the declaration-ordered SweepResult from the
// merged cells. Callers hold co.mu and have verified every index is
// filled.
func (j *fleetJob) assembleLocked() *muontrap.SweepResult {
	out := &muontrap.SweepResult{Runs: make([]muontrap.RunResult, len(j.results))}
	for i, r := range j.results {
		if r != nil {
			out.Runs[i] = *r
		}
	}
	return out
}

// pokeLocked wakes every stream subscriber. Callers hold co.mu.
func (j *fleetJob) pokeLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// attemptJobFailed fails the whole fleet job: a worker ran the cell and
// the sweep itself errored (not the worker), so every other machine
// would fail it identically.
func (co *Coordinator) attemptJobFailed(a *attempt, msg string) {
	co.mu.Lock()
	if a.closed {
		co.mu.Unlock()
		return
	}
	co.closeAttemptLocked(a)
	a.w.fails = 0
	j := a.c.job
	co.mu.Unlock()
	co.failJob(j, msg)
}

// failJob transitions a job to failed and settles its open attempts.
func (co *Coordinator) failJob(j *fleetJob, msg string) {
	co.mu.Lock()
	if j.rec.State.Terminal() {
		co.mu.Unlock()
		return
	}
	j.rec.State = muontrap.JobFailed
	j.rec.Error = msg
	j.rec.FinishedAt = time.Now().UTC().Format(time.RFC3339)
	for _, c := range j.cells {
		for a := range c.attempts {
			co.closeAttemptLocked(a)
			co.cancelRemote(a)
		}
	}
	j.pokeLocked()
	co.span(telemetry.Span{Event: "failed", Job: j.rec.ID, Detail: msg})
	co.mu.Unlock()
	co.persist(j)
}

// cancelRemote best-effort cancels an attempt's worker-side job so a
// stolen-from straggler stops burning cycles on a moot cell. Callers
// hold co.mu (only immutable attempt fields are read in the goroutine).
func (co *Coordinator) cancelRemote(a *attempt) {
	id := a.remoteID
	if id == "" {
		return
	}
	w := a.w
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = w.client.Cancel(ctx, id)
	}()
}

// ---- submission and the public job API ------------------------------

// submit validates a sweep, shards it into cells, and registers the job.
// resume pre-flags every cell to dispatch with checkpoint-resume.
func (co *Coordinator) submit(sw muontrap.Sweep, prio muontrap.Priority, resume bool) (muontrap.Job, bool, error) {
	if err := validateSweep(sw); err != nil {
		return muontrap.Job{}, false, err
	}
	prio, err := muontrap.ParsePriority(string(prio))
	if err != nil {
		return muontrap.Job{}, false, err
	}
	key := co.sweepKey(sw)
	total := len(sw.Workloads)*len(sw.Schemes)*len(co.effectiveScales(sw)) +
		len(sw.Attacks)*len(sw.Schemes)
	rec := muontrap.Job{
		ID:          newJobID(),
		State:       muontrap.JobQueued,
		Sweep:       sw,
		CacheKey:    key,
		Priority:    prio,
		Total:       total,
		SubmittedAt: time.Now().UTC().Format(time.RFC3339),
	}
	j := co.newJob(rec)

	if res, ok := co.loadResult(key); ok && len(res.Runs) == total {
		// Born done from the coordinator's content-keyed result store.
		j.rec.State = muontrap.JobDone
		j.rec.Done = total
		j.rec.FinishedAt = j.rec.SubmittedAt
		for i := range res.Runs {
			r := res.Runs[i]
			j.results[i] = &r
		}
		for _, c := range j.cells {
			c.done = true
		}
		co.mu.Lock()
		co.registerLocked(j)
		co.mu.Unlock()
		co.persist(j)
		return j.rec, true, nil
	}
	if resume {
		for _, c := range j.cells {
			c.resume = true
		}
	}
	co.mu.Lock()
	co.registerLocked(j)
	rec = j.rec
	co.mu.Unlock()
	co.span(telemetry.Span{Event: "submit", Job: rec.ID, Detail: string(prio)})
	co.span(telemetry.Span{Event: "queue", Job: rec.ID})
	co.persist(j)
	co.kick()
	return rec, false, nil
}

// newJob shards a validated sweep into cells, deduplicating repeated
// declarations by cache key (they share one dispatch and one merge).
func (co *Coordinator) newJob(rec muontrap.Job) *fleetJob {
	j := &fleetJob{
		rec:     rec,
		results: make([]*muontrap.RunResult, rec.Total),
		subs:    make(map[chan struct{}]struct{}),
	}
	byKey := make(map[string]*cell)
	scales := co.effectiveScales(rec.Sweep)
	declared := len(rec.Sweep.Scales) > 0
	idx := 0
	for _, w := range rec.Sweep.Workloads {
		for _, s := range rec.Sweep.Schemes {
			for _, scale := range scales {
				sub := muontrap.Sweep{
					Workloads: []muontrap.Workload{w},
					Schemes:   []muontrap.Scheme{s},
					MaxCycles: rec.Sweep.MaxCycles,
				}
				if declared {
					sub.Scales = []float64{scale}
				}
				key := co.sweepKey(sub)
				c := byKey[key]
				if c == nil {
					c = &cell{job: j, key: key, sweep: sub, attempts: make(map[*attempt]struct{})}
					byKey[key] = c
					j.cells = append(j.cells, c)
				}
				c.indexes = append(c.indexes, idx)
				idx++
			}
		}
	}
	// Attack cells follow the workload block, mirroring Runner.Sweep's
	// declaration order: attacks outer, schemes inner, no scale dimension
	// (attack outcomes are scale-independent).
	for _, a := range rec.Sweep.Attacks {
		for _, s := range rec.Sweep.Schemes {
			sub := muontrap.Sweep{
				Attacks:   []muontrap.AttackName{a},
				Schemes:   []muontrap.Scheme{s},
				MaxCycles: rec.Sweep.MaxCycles,
			}
			key := co.sweepKey(sub)
			c := byKey[key]
			if c == nil {
				c = &cell{job: j, key: key, sweep: sub, attempts: make(map[*attempt]struct{})}
				byKey[key] = c
				j.cells = append(j.cells, c)
			}
			c.indexes = append(c.indexes, idx)
			idx++
		}
	}
	return j
}

// registerLocked adds a job to the table in submission order. Callers
// hold co.mu.
func (co *Coordinator) registerLocked(j *fleetJob) {
	co.jobs[j.rec.ID] = j
	co.order = append(co.order, j.rec.ID)
}

// cancelJob aborts a queued or running fleet job: open attempts are
// settled and their remote jobs cancelled.
func (co *Coordinator) cancelJob(id string) (muontrap.Job, error) {
	co.mu.Lock()
	j, ok := co.jobs[id]
	if !ok {
		co.mu.Unlock()
		return muontrap.Job{}, fmt.Errorf("%w %q", muontrap.ErrUnknownJob, id)
	}
	switch j.rec.State {
	case muontrap.JobQueued, muontrap.JobRunning:
		j.rec.State = muontrap.JobCancelled
		j.rec.FinishedAt = time.Now().UTC().Format(time.RFC3339)
		for _, c := range j.cells {
			for a := range c.attempts {
				co.closeAttemptLocked(a)
				co.cancelRemote(a)
			}
		}
		j.pokeLocked()
	case muontrap.JobCancelled: // idempotent
	default:
		state := j.rec.State
		co.mu.Unlock()
		return muontrap.Job{}, &conflictError{fmt.Sprintf("job %s is %s and cannot be cancelled", id, state)}
	}
	rec := j.rec
	co.mu.Unlock()
	co.persist(j)
	return rec, nil
}

// resumeJob re-enters a cancelled/failed/interrupted job's unfinished
// cells into the dispatch pool with checkpoint-resume.
func (co *Coordinator) resumeJob(id string) (muontrap.Job, error) {
	co.mu.Lock()
	j, ok := co.jobs[id]
	if !ok {
		co.mu.Unlock()
		return muontrap.Job{}, fmt.Errorf("%w %q", muontrap.ErrUnknownJob, id)
	}
	switch j.rec.State {
	case muontrap.JobCancelled, muontrap.JobFailed, muontrap.JobInterrupted:
	default:
		state := j.rec.State
		co.mu.Unlock()
		return muontrap.Job{}, &conflictError{fmt.Sprintf(
			"job %s is %s; only interrupted, cancelled or failed jobs can be resumed", id, state)}
	}
	if j.incompat != "" {
		msg := j.incompat
		co.mu.Unlock()
		return muontrap.Job{}, &conflictError{msg}
	}
	j.rec.State = muontrap.JobQueued
	j.rec.Error = ""
	j.rec.FinishedAt = ""
	for _, c := range j.cells {
		if !c.done {
			c.resume = true
		}
	}
	rec := j.rec
	co.mu.Unlock()
	co.persist(j)
	co.kick()
	return rec, nil
}

// ---- worker registry ------------------------------------------------

// register admits (or re-admits) a worker. A previous registration at
// the same base URL is retired first — its in-flight cells re-queue —
// so a restarted worker process never leaves a zombie entry holding
// dispatch capacity.
func (co *Coordinator) register(req RegisterRequest) RegisterResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, w := range co.workers {
		if w.base == req.BaseURL && !w.dead {
			co.markWorkerDeadLocked(w)
			co.stats.DeadWorkers-- // replaced, not lost
		}
	}
	w := &worker{
		id:       newWorkerID(),
		name:     req.Name,
		base:     req.BaseURL,
		client:   client.New(req.BaseURL, client.WithRetries(co.cfg.WorkerRetries)),
		lastSeen: time.Now(),
	}
	co.workers[w.id] = w
	co.kick()
	return RegisterResponse{WorkerID: w.id}
}

// heartbeat refreshes a worker's liveness; false means the coordinator
// does not know (or has retired) the worker and it must re-register.
func (co *Coordinator) heartbeat(req HeartbeatRequest) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	w, ok := co.workers[req.WorkerID]
	if !ok || w.dead {
		return false
	}
	w.lastSeen = time.Now()
	return true
}

// Workers snapshots the registry, sorted by id.
func (co *Coordinator) Workers() []WorkerStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]WorkerStatus, 0, len(co.workers))
	for _, w := range co.workers {
		out = append(out, WorkerStatus{
			ID: w.id, Name: w.name, BaseURL: w.base,
			Alive: !w.dead, Inflight: w.inflight,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ---- keys, validation, ids ------------------------------------------

// validateSweep mirrors the single-daemon submission validation.
func validateSweep(sw muontrap.Sweep) error {
	if len(sw.Workloads) == 0 && len(sw.Attacks) == 0 {
		return fmt.Errorf("sweep declares no workloads or attacks")
	}
	if len(sw.Schemes) == 0 {
		return fmt.Errorf("sweep declares no schemes")
	}
	for _, w := range sw.Workloads {
		if _, err := muontrap.ParseWorkload(string(w)); err != nil {
			return err
		}
	}
	for _, a := range sw.Attacks {
		if _, err := muontrap.ParseAttackName(string(a)); err != nil {
			return err
		}
	}
	for _, sch := range sw.Schemes {
		if sch == "" {
			continue
		}
		if _, err := muontrap.ParseScheme(string(sch)); err != nil {
			return err
		}
	}
	return nil
}

// effectiveScales resolves a sweep's scales exactly as a worker daemon
// at the same Scale flag will.
func (co *Coordinator) effectiveScales(sw muontrap.Sweep) []float64 {
	if len(sw.Scales) > 0 {
		return sw.Scales
	}
	scale := co.cfg.Scale
	if scale <= 0 {
		scale = figures.DefaultOptions().Scale
	}
	return []float64{scale}
}

// sweepKey is the content key of a sweep's result under this fleet's
// identity flags — the same canonical string internal/service hashes, so
// a fleet of identically-configured daemons and the coordinator agree on
// what "the same experiment" means.
func (co *Coordinator) sweepKey(sw muontrap.Sweep) string {
	maxCycles := sw.MaxCycles
	if maxCycles <= 0 {
		maxCycles = co.cfg.MaxCycles
	}
	if maxCycles <= 0 {
		maxCycles = figures.DefaultOptions().MaxCycles
	}
	scales := make([]string, 0, len(sw.Scales))
	for _, sc := range co.effectiveScales(sw) {
		scales = append(scales, strconv.FormatFloat(sc, 'g', -1, 64))
	}
	wl := make([]string, len(sw.Workloads))
	for i, w := range sw.Workloads {
		wl[i] = string(w)
	}
	sch := make([]string, len(sw.Schemes))
	for i, x := range sw.Schemes {
		if x == "" {
			x = muontrap.SchemeInsecure
		}
		sch[i] = string(x)
	}
	atk := make([]string, len(sw.Attacks))
	for i, a := range sw.Attacks {
		atk[i] = string(a)
	}
	canon := fmt.Sprintf("sweep|v%d|bin=%s|wl=%s|atk=%s|sch=%s|scales=%s|max=%d|warm=%d|every=%d",
		journalVersion, figures.BinFingerprint(),
		strings.Join(wl, ","), strings.Join(atk, ","), strings.Join(sch, ","),
		strings.Join(scales, ","), maxCycles, co.cfg.Warmup, co.cfg.CheckpointEvery)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// conflictError marks a request naming a real resource in the wrong
// state (HTTP 409).
type conflictError struct{ msg string }

func (e *conflictError) Error() string { return e.msg }

// newJobID returns a fresh random job identifier (same shape as a
// worker daemon's).
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("job-t%x", time.Now().UnixNano())
	}
	return "job-" + hex.EncodeToString(b[:])
}

// newWorkerID returns a fresh random worker identifier.
func newWorkerID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("w-t%x", time.Now().UnixNano())
	}
	return "w-" + hex.EncodeToString(b[:])
}

// ---- result store ---------------------------------------------------

func (co *Coordinator) resultStorePath(key string) string {
	return filepath.Join(co.cfg.Dir, "fleet", "sweeps", key+".json")
}

// storeResult persists a completed sweep under its cache key.
func (co *Coordinator) storeResult(key string, res *muontrap.SweepResult) {
	if co.cfg.Dir == "" || res == nil {
		return
	}
	b, err := json.MarshalIndent(res, "", "\t")
	if err != nil {
		return
	}
	path := co.resultStorePath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: result store unavailable: %v\n", err)
		return
	}
	if err := checkpoint.WriteAtomic(path, b); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: storing result %s failed: %v\n", key, err)
	}
}

// loadResult fetches a stored sweep result by cache key; any failure is
// a miss.
func (co *Coordinator) loadResult(key string) (*muontrap.SweepResult, bool) {
	if co.cfg.Dir == "" || !validCacheKey(key) {
		return nil, false
	}
	b, err := os.ReadFile(co.resultStorePath(key))
	if err != nil {
		return nil, false
	}
	var res muontrap.SweepResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, false
	}
	return &res, true
}
