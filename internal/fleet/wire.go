package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"

	"repro/muontrap"
)

// The fleet wire messages: worker registration and heartbeat (worker →
// coordinator), the worker status listing (coordinator → observer), and
// the cell-assignment record the coordinator journals per shard. Every
// inbound message is decoded strictly — unknown fields and malformed
// values are errors, never silently-zeroed surprises — through the
// Decode* helpers, which the fuzz suite holds to a canonical round-trip
// property: whatever decodes must re-encode and re-decode to itself.

// RegisterRequest announces a worker to the coordinator
// (POST /fleet/v1/register). BaseURL is the address the coordinator
// dials the worker's /v1/jobs surface at, so it must be reachable from
// the coordinator, not merely from the worker itself.
type RegisterRequest struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
}

// RegisterResponse carries the coordinator-assigned worker identity the
// worker heartbeats under.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
}

// HeartbeatRequest keeps a registered worker alive
// (POST /fleet/v1/heartbeat). A worker the coordinator no longer knows —
// it was marked dead, or the coordinator restarted — is answered 404,
// the signal to re-register.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// WorkerStatus is one row of the coordinator's worker listing
// (GET /fleet/v1/workers).
type WorkerStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	BaseURL  string `json:"base_url"`
	Alive    bool   `json:"alive"`
	Inflight int    `json:"inflight"`
}

// CellRecord is one shard-map entry of the coordinator's job journal:
// one resolved cell of a sweep, the declaration indexes it fills
// (duplicate declarations share a cell), and — once the cell has
// finished somewhere — its merged result. The journal is what lets a
// restarted coordinator resume a sweep without re-running done cells.
type CellRecord struct {
	// Key is the cell's content cache key (64 hex digits), the merge
	// identity under which exactly one completion wins.
	Key string `json:"key"`
	// Sweep is the single-cell sub-sweep dispatched for this record.
	Sweep muontrap.Sweep `json:"sweep"`
	// Indexes are the declaration-order positions this cell fills in the
	// merged SweepResult.
	Indexes []int `json:"indexes"`
	// Done marks a merged cell; Result is its run, present iff Done.
	Done   bool                `json:"done"`
	Result *muontrap.RunResult `json:"result,omitempty"`
}

// decodeStrict unmarshals one wire message rejecting unknown fields and
// trailing garbage.
func decodeStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("fleet: trailing data after message")
	}
	return nil
}

// validBaseURL reports whether s is an absolute http(s) URL the
// coordinator could dial.
func validBaseURL(s string) bool {
	u, err := url.Parse(s)
	return err == nil && (u.Scheme == "http" || u.Scheme == "https") && u.Host != ""
}

// DecodeRegisterRequest strictly decodes and validates a registration.
func DecodeRegisterRequest(b []byte) (RegisterRequest, error) {
	var req RegisterRequest
	if err := decodeStrict(b, &req); err != nil {
		return RegisterRequest{}, fmt.Errorf("fleet: register request: %w", err)
	}
	if req.Name == "" {
		return RegisterRequest{}, fmt.Errorf("fleet: register request: empty worker name")
	}
	if !validBaseURL(req.BaseURL) {
		return RegisterRequest{}, fmt.Errorf("fleet: register request: base_url %q is not an absolute http(s) URL", req.BaseURL)
	}
	return req, nil
}

// DecodeHeartbeatRequest strictly decodes and validates a heartbeat.
func DecodeHeartbeatRequest(b []byte) (HeartbeatRequest, error) {
	var req HeartbeatRequest
	if err := decodeStrict(b, &req); err != nil {
		return HeartbeatRequest{}, fmt.Errorf("fleet: heartbeat request: %w", err)
	}
	if req.WorkerID == "" {
		return HeartbeatRequest{}, fmt.Errorf("fleet: heartbeat request: empty worker_id")
	}
	return req, nil
}

// DecodeCellRecord strictly decodes and validates one journaled
// cell-assignment record.
func DecodeCellRecord(b []byte) (CellRecord, error) {
	var rec CellRecord
	if err := decodeStrict(b, &rec); err != nil {
		return CellRecord{}, fmt.Errorf("fleet: cell record: %w", err)
	}
	if !validCacheKey(rec.Key) {
		return CellRecord{}, fmt.Errorf("fleet: cell record: key %q is not a 64-hex cache key", rec.Key)
	}
	if len(rec.Indexes) == 0 {
		return CellRecord{}, fmt.Errorf("fleet: cell record: no declaration indexes")
	}
	for _, i := range rec.Indexes {
		if i < 0 {
			return CellRecord{}, fmt.Errorf("fleet: cell record: negative declaration index %d", i)
		}
	}
	if rec.Done != (rec.Result != nil) {
		return CellRecord{}, fmt.Errorf("fleet: cell record: done=%v with result present=%v", rec.Done, rec.Result != nil)
	}
	return rec, nil
}

// validCacheKey reports whether key has the canonical cache-key shape:
// exactly 64 lowercase hex digits (the same validation internal/service
// applies before building any path from a key).
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
