package fleet_test

import (
	"context"
	"testing"

	"repro/internal/figures"
	"repro/internal/fleet"
	"repro/muontrap"
)

// TestFleetSecurityMatrixMatchesSingleMachine pins that the security
// matrix is byte-identical when its cells are sharded across a fleet: a
// three-worker fleet runs the full attacks × schemes sweep, and both the
// merged sweep JSON and the assembled matrix rendering must match the
// single-machine reference exactly.
func TestFleetSecurityMatrixMatchesSingleMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus simulation")
	}
	defer figures.ResetRunCache()
	sw := muontrap.Sweep{
		Attacks: muontrap.AttackNames(),
		Schemes: muontrap.SecuritySchemes(),
	}
	ref := reference(t, sw)
	refMatrix, err := muontrap.SecurityMatrixFromSweep(sw, ref)
	if err != nil {
		t.Fatal(err)
	}

	f := newTestFleet(t, 3, fleet.Config{})
	got, err := f.client.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, got)) != string(marshal(t, ref)) {
		t.Fatalf("fleet attack sweep differs from single-machine reference:\nfleet: %s\nref:   %s",
			marshal(t, got), marshal(t, ref))
	}
	gotMatrix, err := muontrap.SecurityMatrixFromSweep(sw, got)
	if err != nil {
		t.Fatal(err)
	}
	if gotMatrix.Render() != refMatrix.Render() {
		t.Fatalf("fleet-assembled security matrix differs from reference:\nfleet:\n%s\nref:\n%s",
			gotMatrix.Render(), refMatrix.Render())
	}
}
