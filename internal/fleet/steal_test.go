package fleet_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/fleet"
	"repro/muontrap"
)

// wedgedWorker is a fake worker daemon that accepts every submission
// and then runs it forever: the canonical straggler. It answers the
// exact wire shapes a real daemon does, so the coordinator cannot tell
// it from a healthy-but-glacial machine.
func wedgedWorker(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	writeJob := func(w http.ResponseWriter, status int, j muontrap.Job) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write(mustJSON(t, j))
	}
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJob(w, http.StatusAccepted, muontrap.Job{ID: "job-wedged", State: muontrap.JobRunning, Total: 1})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJob(w, http.StatusOK, muontrap.Job{ID: r.PathValue("id"), State: muontrap.JobRunning, Total: 1})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJob(w, http.StatusAccepted, muontrap.Job{ID: r.PathValue("id"), State: muontrap.JobCancelled, Total: 1})
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs
}

func mustJSON(t *testing.T, j muontrap.Job) []byte {
	t.Helper()
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetStealsFromStraggler pins work stealing: a cell dispatched to
// a wedged worker must, after StealAfter, be speculatively re-dispatched
// to an idle healthy worker, complete there, and merge byte-identically
// to the single-machine answer — while the straggler's eventual fate
// (it never finishes) stays irrelevant.
func TestFleetStealsFromStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation")
	}
	defer figures.ResetRunCache()
	sw := muontrap.Sweep{
		Workloads: []muontrap.Workload{"swaptions"},
		Schemes:   []muontrap.Scheme{"muontrap"},
		Scales:    []float64{0.02},
	}
	ref := reference(t, sw)

	f := newTestFleet(t, 0, fleet.Config{StealAfter: 300 * time.Millisecond})
	// The wedge registers first and alone, so the cell must land on it.
	wedge := wedgedWorker(t)
	agent, err := fleet.StartAgent(fleet.AgentConfig{
		Coordinator: f.hs.URL,
		Name:        "wedge",
		BaseURL:     wedge.URL,
		Interval:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	f.waitWorkers(1)

	job, err := f.client.Submit(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.co.Stats().Dispatched == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cell never dispatched to the wedged worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Now a healthy worker appears; the straggling cell must be stolen
	// onto it.
	f.addWorker()
	f.waitWorkers(2)

	final, err := f.client.Stream(context.Background(), job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != muontrap.JobDone {
		t.Fatalf("job ended %s (%s), want done via steal", final.State, final.Error)
	}
	got, err := f.client.Result(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, got)) != string(marshal(t, ref)) {
		t.Fatalf("stolen cell's table differs from reference:\ngot: %s\nref: %s",
			marshal(t, got), marshal(t, ref))
	}
	if st := f.co.Stats(); st.Steals == 0 {
		t.Fatalf("job completed but no steal was recorded: %+v", st)
	}
}
