package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/fleet"
	"repro/muontrap"
)

// apiCall issues one raw HTTP request against the coordinator and
// decodes the JSON body (when there is one) into out.
func (f *testFleet) apiCall(method, path string, body string, out any) int {
	f.t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, f.hs.URL+path, rd)
	if err != nil {
		f.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			f.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// wantAPIError asserts a request fails with the given HTTP status and
// wire error code — the same envelope the single daemon speaks, so
// client-side error mapping keeps working against a coordinator.
func (f *testFleet) wantAPIError(method, path, body string, status int, code string) {
	f.t.Helper()
	var e struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
	if got := f.apiCall(method, path, body, &e); got != status {
		f.t.Fatalf("%s %s: status %d, want %d", method, path, got, status)
	}
	if e.Code != code {
		f.t.Fatalf("%s %s: error code %q, want %q", method, path, e.Code, code)
	}
}

// TestCoordinatorAPISurface walks the coordinator's public HTTP surface
// deterministically: validation errors carry the daemon's wire codes,
// cancel/resume follow the job state machine (with idempotent cancel
// and 409s in wrong states), and the catalog, health, worker-registry
// and result-by-key endpoints answer. Jobs are submitted into a fleet
// with NO workers so every pre-completion transition is race-free; a
// worker joins only when the test wants the job to finish.
func TestCoordinatorAPISurface(t *testing.T) {
	defer figures.ResetRunCache()
	f := newTestFleet(t, 0, fleet.Config{})

	// --- submission validation: the four error families -------------
	f.wantAPIError("POST", "/v1/jobs", `{not json`, http.StatusBadRequest, "bad_request")
	f.wantAPIError("POST", "/v1/jobs", `{"sweep":{"workloads":["nope"],"schemes":["muontrap"]}}`,
		http.StatusBadRequest, "unknown_workload")
	f.wantAPIError("POST", "/v1/jobs", `{"sweep":{"workloads":["swaptions"],"schemes":["nope"]}}`,
		http.StatusBadRequest, "unknown_scheme")
	f.wantAPIError("POST", "/v1/jobs", `{"sweep":{"workloads":[],"schemes":["muontrap"]}}`,
		http.StatusBadRequest, "bad_request")
	f.wantAPIError("POST", "/v1/jobs", `{"sweep":{"workloads":["swaptions"]}}`,
		http.StatusBadRequest, "bad_request")

	// --- unknown resources -------------------------------------------
	f.wantAPIError("GET", "/v1/jobs/job-bogus", "", http.StatusNotFound, "unknown_job")
	f.wantAPIError("GET", "/v1/jobs/job-bogus/result", "", http.StatusNotFound, "unknown_job")
	f.wantAPIError("GET", "/v1/jobs/job-bogus/stream", "", http.StatusNotFound, "unknown_job")
	f.wantAPIError("DELETE", "/v1/jobs/job-bogus", "", http.StatusNotFound, "unknown_job")
	f.wantAPIError("POST", "/v1/jobs/job-bogus/resume", "", http.StatusNotFound, "unknown_job")
	f.wantAPIError("GET", "/v1/results/"+strings.Repeat("0", 64), "", http.StatusNotFound, "unknown_result")

	// --- control plane: malformed bodies and unknown workers ---------
	f.wantAPIError("POST", "/fleet/v1/register", `{"name":3}`, http.StatusBadRequest, "bad_request")
	f.wantAPIError("POST", "/fleet/v1/heartbeat", `{`, http.StatusBadRequest, "bad_request")
	f.wantAPIError("POST", "/fleet/v1/heartbeat", `{"worker_id":"w-bogus"}`, http.StatusNotFound, "unknown_worker")

	// --- catalog and health ------------------------------------------
	var cat muontrap.Catalog
	if got := f.apiCall("GET", "/v1/catalog", "", &cat); got != http.StatusOK {
		t.Fatalf("catalog: status %d", got)
	}
	if len(cat.Workloads) == 0 || len(cat.Schemes) == 0 {
		t.Fatalf("catalog is empty: %+v", cat)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if got := f.apiCall("GET", "/v1/healthz", "", &health); got != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: status %d, body %+v", got, health)
	}

	// --- a scale-less sweep resolves against the coordinator's default
	// scale for its cache key; with no workers it stays queued, so the
	// cancel path is deterministic.
	var job1 muontrap.Job
	if got := f.apiCall("POST", "/v1/jobs",
		`{"sweep":{"workloads":["swaptions"],"schemes":["muontrap"]}}`, &job1); got != http.StatusAccepted {
		t.Fatalf("scale-less submit: status %d", got)
	}
	if job1.State != muontrap.JobQueued || job1.Total != 1 {
		t.Fatalf("scale-less job: %+v", job1)
	}
	// Result before done is a 409, not a 404: the job exists.
	f.wantAPIError("GET", "/v1/jobs/"+job1.ID+"/result", "", http.StatusConflict, "conflict")
	var cancelled muontrap.Job
	if got := f.apiCall("DELETE", "/v1/jobs/"+job1.ID, "", &cancelled); got != http.StatusAccepted {
		t.Fatalf("cancel: status %d", got)
	}
	if cancelled.State != muontrap.JobCancelled {
		t.Fatalf("cancel left job %s", cancelled.State)
	}
	// Cancel is idempotent.
	if got := f.apiCall("DELETE", "/v1/jobs/"+job1.ID, "", &cancelled); got != http.StatusAccepted {
		t.Fatalf("re-cancel: status %d", got)
	}
	// Resume re-queues it; with no workers it just sits there, so a
	// second cancel exercises the running/queued branch again.
	var resumed muontrap.Job
	if got := f.apiCall("POST", "/v1/jobs/"+job1.ID+"/resume", "", &resumed); got != http.StatusAccepted {
		t.Fatalf("resume: status %d", got)
	}
	if resumed.State != muontrap.JobQueued {
		t.Fatalf("resume left job %s", resumed.State)
	}
	if got := f.apiCall("DELETE", "/v1/jobs/"+job1.ID, "", &cancelled); got != http.StatusAccepted {
		t.Fatalf("cancel after resume: status %d", got)
	}

	// --- a real single-cell job, completed once a worker joins -------
	sw := muontrap.Sweep{
		Workloads: []muontrap.Workload{"swaptions"},
		Schemes:   []muontrap.Scheme{"muontrap"},
		Scales:    []float64{0.02},
	}
	job2, err := f.client.Submit(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	f.addWorker()
	f.waitWorkers(1)
	final, err := f.client.Stream(context.Background(), job2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != muontrap.JobDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	res, err := f.client.Result(context.Background(), job2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("result has %d runs, want 1", len(res.Runs))
	}

	// The job list holds both jobs in submission order.
	var list struct {
		Jobs []muontrap.Job `json:"jobs"`
	}
	if got := f.apiCall("GET", "/v1/jobs", "", &list); got != http.StatusOK {
		t.Fatalf("list: status %d", got)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != job1.ID || list.Jobs[1].ID != job2.ID {
		t.Fatalf("job list wrong: %+v", list.Jobs)
	}

	// Result by cache key answers from the coordinator's result store.
	var byKey muontrap.SweepResult
	if got := f.apiCall("GET", "/v1/results/"+final.CacheKey, "", &byKey); got != http.StatusOK {
		t.Fatalf("result by key: status %d", got)
	}
	if len(byKey.Runs) != 1 {
		t.Fatalf("result by key has %d runs, want 1", len(byKey.Runs))
	}

	// Terminal-state guards: a done job can be neither cancelled nor
	// resumed.
	f.wantAPIError("DELETE", "/v1/jobs/"+job2.ID, "", http.StatusConflict, "conflict")
	f.wantAPIError("POST", "/v1/jobs/"+job2.ID+"/resume", "", http.StatusConflict, "conflict")

	// The worker registry reports the one live worker, and its agent
	// never needed to re-register.
	var workers struct {
		Workers []struct {
			Alive bool `json:"alive"`
		} `json:"workers"`
	}
	if got := f.apiCall("GET", "/fleet/v1/workers", "", &workers); got != http.StatusOK {
		t.Fatalf("workers: status %d", got)
	}
	alive := 0
	for _, w := range workers.Workers {
		if w.Alive {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("%d workers alive, want 1", alive)
	}
	if n := f.workers[0].agent.Reregistrations(); n != 0 {
		t.Fatalf("healthy agent re-registered %d times", n)
	}
}
