package fleet_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/muontrap"
	"repro/muontrap/client"
)

// freePort reserves an ephemeral TCP port and releases it for a daemon
// to claim. The tiny claim race is acceptable in tests.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// buildDaemon compiles the real muontrapd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "muontrapd")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/muontrapd")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building muontrapd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches one muontrapd process and waits for its health
// probe. The returned cmd is SIGKILLed at cleanup unless the test
// killed it first.
func startDaemon(t *testing.T, bin string, port int, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:" + strconv.Itoa(port)}, args...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	base := "http://127.0.0.1:" + strconv.Itoa(port)
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon on port %d never became healthy", port)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// fleetHealth fetches the coordinator's /v1/healthz counters.
func fleetHealth(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRealDaemonFleetKillDashNine is the out-of-process half of the
// chaos gate: a real coordinator process and two real worker processes
// (separate muontrapd binaries, real TCP, real kill -9), one worker
// SIGKILLed mid-cell after its first mid-run checkpoint ref lands on
// disk. The fleet must finish the sweep — the interrupted cell migrated
// via the coordinator's content store — and the table must be
// byte-identical to the single-machine reference.
func TestRealDaemonFleetKillDashNine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real daemon processes")
	}
	defer figures.ResetRunCache()
	sw := fig4Sweep()
	ref := reference(t, sw)

	bin := buildDaemon(t)
	coPort := freePort(t)
	coBase := "http://127.0.0.1:" + strconv.Itoa(coPort)
	coDir := t.TempDir()
	startDaemon(t, bin, coPort,
		"-coordinator", "-cache", coDir,
		"-checkpoint-every", strconv.Itoa(cadence),
		"-heartbeat-timeout", "500ms")

	type workerProc struct {
		cmd *exec.Cmd
		dir string
	}
	var workers []workerProc
	for i := 0; i < 2; i++ {
		port := freePort(t)
		dir := t.TempDir()
		cmd := startDaemon(t, bin, port,
			"-cache", dir,
			"-checkpoint-every", strconv.Itoa(cadence),
			"-join", coBase,
			"-advertise", "http://127.0.0.1:"+strconv.Itoa(port),
			"-heartbeat-interval", "100ms")
		workers = append(workers, workerProc{cmd: cmd, dir: dir})
	}

	// Wait for both workers to register.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(coBase + "/fleet/v1/workers")
		alive := 0
		if err == nil {
			var body struct {
				Workers []struct {
					Alive bool `json:"alive"`
				} `json:"workers"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			for _, w := range body.Workers {
				if w.Alive {
					alive++
				}
			}
		}
		if alive >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 2 worker daemons registered in time", alive)
		}
		time.Sleep(50 * time.Millisecond)
	}

	c := client.New(coBase)
	job, err := c.Submit(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}

	// kill -9 the first worker the moment its first checkpoint ref lands
	// (the Mirror ships remote-first, so the checkpoint is already in the
	// coordinator's store).
	victim := workers[0]
	snapDir := filepath.Join(victim.dir, "snapshots")
	killDeadline := time.Now().Add(2 * time.Minute)
	for !hasRef(snapDir) {
		if time.Now().After(killDeadline) {
			t.Fatal("no checkpoint ref appeared on the victim daemon before the kill deadline")
		}
		if j, err := c.Job(context.Background(), job.ID); err == nil && j.State.Terminal() {
			t.Fatalf("job reached %s before the victim ever checkpointed", j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no journal flush
		t.Fatal(err)
	}
	_ = victim.cmd.Wait()

	final, err := c.Stream(context.Background(), job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != muontrap.JobDone {
		t.Fatalf("fleet job ended %s (%s), want done", final.State, final.Error)
	}
	got, err := c.Result(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, got)) != string(marshal(t, ref)) {
		t.Fatalf("fleet table differs from single-machine reference:\nfleet: %s\nref:   %s",
			marshal(t, got), marshal(t, ref))
	}

	health := fleetHealth(t, coBase)
	if mig, _ := health["migrations"].(float64); mig < 1 {
		t.Fatalf("no migration recorded after kill -9: %v", health)
	}
	if dead, _ := health["dead_workers"].(float64); dead < 1 {
		t.Fatalf("victim never marked dead: %v", health)
	}
}
