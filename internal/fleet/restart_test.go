package fleet_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/fleet"
	"repro/muontrap"
	"repro/muontrap/client"
)

// TestCoordinatorRestartResumesShardMap pins coordinator crash-resume:
// a coordinator killed mid-sweep (closed without any terminal state,
// what SIGKILL leaves behind) and restarted over the same directory must
// replay its shard-map journal — completed cells keep their merged
// results and are NEVER re-dispatched, pending cells re-enter the pool
// with checkpoint-resume — and the finished table must still be
// byte-identical to the single-machine reference.
func TestCoordinatorRestartResumesShardMap(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale simulation")
	}
	defer figures.ResetRunCache()
	sw := fig4Sweep()
	ref := reference(t, sw)

	coDir := t.TempDir()
	f := newTestFleet(t, 2, fleet.Config{Dir: coDir})
	job, err := f.client.Submit(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}

	// Let the fleet merge a few cells, then kill the coordinator.
	deadline := time.Now().Add(2 * time.Minute)
	var doneBefore int
	for {
		j, err := f.client.Job(context.Background(), job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == muontrap.JobDone {
			t.Fatal("fleet finished the whole sweep before the kill point; slow the sweep down")
		}
		doneBefore = j.Done
		if doneBefore >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d cells merged before the kill deadline", doneBefore)
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.hs.Close()
	f.co.Close() // like a kill: no terminal state journaled, attempts abandoned

	// Restart over the same directory. The workers re-join the new
	// coordinator (in production the agent re-registers through its 404
	// path; the new httptest URL forces explicit re-join here).
	co2, err := fleet.New(fleet.Config{Dir: coDir, CheckpointEvery: cadence, HeartbeatTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(co2)
	t.Cleanup(func() {
		hs2.Close()
		co2.Close()
	})
	c2 := client.New(hs2.URL)

	restarted, err := c2.Job(context.Background(), job.ID)
	if err != nil {
		t.Fatalf("restarted coordinator lost job %s from its journal: %v", job.ID, err)
	}
	doneAtLoad := restarted.Done
	if doneAtLoad < doneBefore {
		t.Fatalf("journal replayed %d done cells, but %d were observed merged before the kill", doneAtLoad, doneBefore)
	}
	if restarted.State.Terminal() {
		t.Fatalf("restarted job is %s, want a schedulable state", restarted.State)
	}

	for _, w := range f.workers {
		agent, err := fleet.StartAgent(fleet.AgentConfig{
			Coordinator: hs2.URL,
			Name:        w.name,
			BaseURL:     w.hs.URL,
			Interval:    100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agent.Close)
	}

	final, err := c2.Stream(context.Background(), job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != muontrap.JobDone {
		t.Fatalf("resumed job ended %s (%s), want done", final.State, final.Error)
	}
	got, err := c2.Result(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, got)) != string(marshal(t, ref)) {
		t.Fatalf("post-restart table differs from reference:\ngot: %s\nref: %s",
			marshal(t, got), marshal(t, ref))
	}

	// The replay gate: the second coordinator dispatched exactly the
	// cells the journal recorded as unfinished — a completed cell is
	// never re-run.
	if dispatched := co2.Stats().Dispatched; dispatched != uint64(job.Total-doneAtLoad) {
		t.Fatalf("restarted coordinator dispatched %d cells, want %d (total %d − %d journaled done)",
			dispatched, job.Total-doneAtLoad, job.Total, doneAtLoad)
	}
}
