package fleet_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/muontrap"
)

// FuzzWireDecode hammers the fleet's strict wire decoders — worker
// registration, heartbeat, and the journaled cell-assignment record —
// with arbitrary bytes. The contract mirrors the snapshot decoder's
// FuzzDecode: hostile input must either decode cleanly or return an
// error (never panic, never silently zero-fill), and anything that
// decodes must survive a canonical round-trip — re-encoding and
// re-decoding yields the identical message. The round-trip property is
// what lets the coordinator journal what it decoded and trust the
// replay.
func FuzzWireDecode(f *testing.F) {
	seed := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(fleet.RegisterRequest{Name: "worker-1", BaseURL: "http://10.0.0.2:7077"})
	seed(fleet.HeartbeatRequest{WorkerID: "w-0011223344"})
	run := muontrap.RunResult{
		Workload: "swaptions", Scheme: "muontrap", Scale: 0.02,
		Result: muontrap.Result{Cycles: 123456, Instructions: 654321, Counters: map[string]uint64{"l2.misses": 7}},
	}
	seed(fleet.CellRecord{
		Key: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
		Sweep: muontrap.Sweep{
			Workloads: []muontrap.Workload{"swaptions"},
			Schemes:   []muontrap.Scheme{"muontrap"},
			Scales:    []float64{0.02},
		},
		Indexes: []int{0, 3},
		Done:    true,
		Result:  &run,
	})
	seed(fleet.CellRecord{
		Key: "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
		Sweep: muontrap.Sweep{
			Workloads: []muontrap.Workload{"blackscholes"},
			Schemes:   []muontrap.Scheme{"stt-future"},
		},
		Indexes: []int{11},
	})
	// Hostile shapes: wrong types, unknown fields, trailing garbage,
	// truncations, invariant violations.
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"name": 3, "base_url": true}`))
	f.Add([]byte(`{"name":"x","base_url":"http://h","extra":1}`))
	f.Add([]byte(`{"worker_id":"w"}{"worker_id":"v"}`))
	f.Add([]byte(`{"key":"AAAA","indexes":[0],"done":false}`))
	f.Add([]byte(`{"key":"` + string(bytes.Repeat([]byte("a"), 64)) + `","indexes":[-1],"done":false}`))
	f.Add([]byte(`{"key":"` + string(bytes.Repeat([]byte("a"), 64)) + `","indexes":[0],"done":true}`))

	f.Fuzz(func(t *testing.T, b []byte) {
		if req, err := fleet.DecodeRegisterRequest(b); err == nil {
			roundTrip(t, "register", req, func(bb []byte) (any, error) { return fleet.DecodeRegisterRequest(bb) })
		}
		if req, err := fleet.DecodeHeartbeatRequest(b); err == nil {
			roundTrip(t, "heartbeat", req, func(bb []byte) (any, error) { return fleet.DecodeHeartbeatRequest(bb) })
		}
		if rec, err := fleet.DecodeCellRecord(b); err == nil {
			roundTrip(t, "cell record", rec, func(bb []byte) (any, error) { return fleet.DecodeCellRecord(bb) })
		}
	})
}

// roundTrip asserts the canonical-form property: encode(decoded) must
// decode back to the identical message.
func roundTrip(t *testing.T, what string, v any, decode func([]byte) (any, error)) {
	t.Helper()
	enc, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("%s: re-encoding a decoded message failed: %v", what, err)
	}
	again, err := decode(enc)
	if err != nil {
		t.Fatalf("%s: canonical re-encoding no longer decodes: %v\n%s", what, err, enc)
	}
	if !reflect.DeepEqual(v, again) {
		t.Fatalf("%s: round-trip changed the message:\nfirst:  %#v\nsecond: %#v", what, v, again)
	}
}
