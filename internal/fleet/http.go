package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/checkpoint"
	"repro/muontrap"
)

// The coordinator's HTTP surface is the single-daemon /v1/jobs API —
// wire-compatible, so muontrap/client drives a fleet and a lone daemon
// with the same code — plus the /fleet/v1/* control plane:
//
//	POST   /v1/jobs              submit a sweep            → 202 Job (200 born done)
//	GET    /v1/jobs              list jobs                 → 200 {"jobs": [Job]}
//	GET    /v1/jobs/{id}         job status                → 200 Job
//	GET    /v1/jobs/{id}/stream  progress over SSE         (resumable via Last-Event-ID)
//	GET    /v1/jobs/{id}/result  completed SweepResult     → 200 | 409 while not done
//	DELETE /v1/jobs/{id}         cancel                    → 202 Job
//	POST   /v1/jobs/{id}/resume  re-queue with resume      → 202 Job
//	GET    /v1/results/{key}     SweepResult by cache key  → 200 | 404
//	GET    /v1/catalog           workloads/schemes/figures → 200
//	GET    /v1/healthz           liveness + fleet Stats    → 200
//	POST   /fleet/v1/register    worker joins              → 200 {"worker_id": ...}
//	POST   /fleet/v1/heartbeat   worker liveness           → 204 | 404 (re-register)
//	GET    /fleet/v1/workers     registry snapshot         → 200 {"workers": [WorkerStatus]}
//	       /fleet/v1/store/...   shared checkpoint store   (checkpoint.StoreHandler)

// streamWriteTimeout bounds one SSE write; a consumer that cannot accept
// a frame within it is disconnected (resumably, via Last-Event-ID)
// rather than pinning coordinator memory.
const streamWriteTimeout = 10 * time.Second

// maxBodyBytes bounds any control-plane request body.
const maxBodyBytes = 1 << 20

// apiError is the JSON error envelope, wire-identical to the daemon's.
type apiError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// errorCode maps an error to its wire code and HTTP status, mirroring
// internal/service so client-side errors.Is keeps working.
func errorCode(err error) (string, int) {
	switch {
	case errors.Is(err, muontrap.ErrUnknownWorkload):
		return "unknown_workload", http.StatusBadRequest
	case errors.Is(err, muontrap.ErrUnknownScheme):
		return "unknown_scheme", http.StatusBadRequest
	case errors.Is(err, muontrap.ErrUnknownJob):
		return "unknown_job", http.StatusNotFound
	}
	var conflict *conflictError
	if errors.As(err, &conflict) {
		return "conflict", http.StatusConflict
	}
	return "bad_request", http.StatusBadRequest
}

// ServeHTTP makes the Coordinator mountable directly into any
// http.Server.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { co.mux.ServeHTTP(w, r) }

func (co *Coordinator) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", co.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", co.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/result", co.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", co.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", co.handleResume)
	mux.HandleFunc("GET /v1/results/{key}", co.handleResultByKey)
	mux.HandleFunc("GET /v1/catalog", co.handleCatalog)
	mux.HandleFunc("GET /v1/healthz", co.handleHealthz)
	mux.HandleFunc("POST /fleet/v1/register", co.handleRegister)
	mux.HandleFunc("POST /fleet/v1/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("GET /fleet/v1/workers", co.handleWorkers)
	if co.store != nil {
		mux.Handle(StorePath+"/", http.StripPrefix(StorePath, checkpoint.StoreHandler(co.store)))
	}
	if co.cfg.Metrics != nil {
		mux.Handle("GET /metrics", co.cfg.Metrics)
	}
	co.mux = mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code, status := errorCode(err)
	writeJSON(w, status, apiError{Code: code, Error: err.Error()})
}

// submitRequest mirrors the daemon's POST /v1/jobs body.
type submitRequest struct {
	Sweep    muontrap.Sweep `json:"sweep"`
	Priority string         `json:"priority,omitempty"`
	Resume   bool           `json:"resume,omitempty"`
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decoding submit request: %w", err))
		return
	}
	rec, cached, err := co.submit(req.Sweep, muontrap.Priority(req.Priority), req.Resume)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, rec)
}

func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	jobs := make([]muontrap.Job, 0, len(co.order))
	for _, id := range co.order {
		jobs = append(jobs, co.jobs[id].rec)
	}
	co.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string][]muontrap.Job{"jobs": jobs})
}

// lookup snapshots one job's record.
func (co *Coordinator) lookup(id string) (muontrap.Job, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	if !ok {
		return muontrap.Job{}, fmt.Errorf("%w %q", muontrap.ErrUnknownJob, id)
	}
	return j.rec, nil
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec, err := co.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// jobResult returns a done job's assembled result: from the merged
// in-memory cells, falling back to the content-keyed store (a journal
// replayed without per-cell results, e.g. a born-done cache hit).
func (co *Coordinator) jobResult(id string) (*muontrap.SweepResult, muontrap.Job, error) {
	co.mu.Lock()
	j, ok := co.jobs[id]
	if !ok {
		co.mu.Unlock()
		return nil, muontrap.Job{}, fmt.Errorf("%w %q", muontrap.ErrUnknownJob, id)
	}
	rec := j.rec
	if rec.State != muontrap.JobDone {
		co.mu.Unlock()
		return nil, rec, &conflictError{fmt.Sprintf("job %s is %s; the result exists only once it is done", rec.ID, rec.State)}
	}
	complete := true
	for _, r := range j.results {
		if r == nil {
			complete = false
			break
		}
	}
	if complete {
		res := j.assembleLocked()
		co.mu.Unlock()
		return res, rec, nil
	}
	co.mu.Unlock()
	if res, ok := co.loadResult(rec.CacheKey); ok && len(res.Runs) == rec.Total {
		return res, rec, nil
	}
	return nil, rec, &conflictError{fmt.Sprintf("job result for cache key %s is no longer stored", rec.CacheKey)}
}

func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	res, _, err := co.jobResult(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (co *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := co.cancelJob(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (co *Coordinator) handleResume(w http.ResponseWriter, r *http.Request) {
	rec, err := co.resumeJob(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (co *Coordinator) handleResultByKey(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if res, ok := co.loadResult(key); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	// Not on disk — maybe merged in-memory on a persistence-less fleet.
	co.mu.Lock()
	for _, id := range co.order {
		j := co.jobs[id]
		if j.rec.CacheKey != key || j.rec.State != muontrap.JobDone {
			continue
		}
		res := j.assembleLocked()
		co.mu.Unlock()
		writeJSON(w, http.StatusOK, res)
		return
	}
	co.mu.Unlock()
	writeJSON(w, http.StatusNotFound, apiError{Code: "unknown_result", Error: fmt.Sprintf("no stored result for cache key %q", key)})
}

func (co *Coordinator) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, muontrap.Catalog{
		Workloads: muontrap.Workloads(),
		Schemes:   muontrap.Schemes(),
		SchemeDoc: muontrap.SchemeDescriptions(),
		Figures:   muontrap.FigureIDs(),
	})
}

// healthResponse mirrors the daemon's healthz shape with the fleet's
// own counters.
type healthResponse struct {
	Status string `json:"status"`
	Stats
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Stats: co.Stats()})
}

// ---- fleet control plane --------------------------------------------

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

func (co *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	b, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	req, err := DecodeRegisterRequest(b)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, co.register(req))
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	b, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	req, err := DecodeHeartbeatRequest(b)
	if err != nil {
		writeError(w, err)
		return
	}
	if !co.heartbeat(req) {
		writeJSON(w, http.StatusNotFound, apiError{
			Code:  "unknown_worker",
			Error: fmt.Sprintf("worker %q is not registered (or was marked dead); re-register", req.WorkerID),
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (co *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]WorkerStatus{"workers": co.Workers()})
}

// ---- SSE ------------------------------------------------------------

// attach subscribes to a job's frame stream.
func (co *Coordinator) attach(id string) (*fleetJob, chan struct{}, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w %q", muontrap.ErrUnknownJob, id)
	}
	ch := make(chan struct{}, 1)
	j.subs[ch] = struct{}{}
	return j, ch, nil
}

func (co *Coordinator) detach(j *fleetJob, ch chan struct{}) {
	co.mu.Lock()
	delete(j.subs, ch)
	co.mu.Unlock()
}

// eventsSince snapshots the frames after cursor and the job record.
func (co *Coordinator) eventsSince(j *fleetJob, cursor uint64) ([]streamFrame, muontrap.Job) {
	co.mu.Lock()
	defer co.mu.Unlock()
	var out []streamFrame
	for _, f := range j.frames {
		if f.id > cursor {
			out = append(out, f)
		}
	}
	return out, j.rec
}

// handleStream speaks the daemon's SSE protocol (job snapshot on
// connect, id'd progress frames, terminal event named by the end state,
// Last-Event-ID resume). The coordinator retains every frame for a
// job's whole life — the window is bounded by the matrix size — and
// synthesizes the replay from the stored result for done jobs whose
// frames were never held (journal replay, born-done cache hits).
func (co *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	j, sub, err := co.attach(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer co.detach(j, sub)
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	var cursor uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			cursor = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	write := func(id uint64, name string, data []byte) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		var err error
		if id > 0 {
			_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, name, data)
		} else {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
		}
		return err == nil
	}
	writeSSE := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		return write(0, event, data)
	}

	snap, _ := co.lookup(j.rec.ID)
	if !writeSSE("job", snap) {
		return
	}
	for {
		evs, snap := co.eventsSince(j, cursor)
		if snap.State == muontrap.JobDone && len(evs) == 0 && cursor < uint64(snap.Total) {
			if res, _, err := co.jobResult(snap.ID); err == nil {
				for i, run := range res.Runs {
					id := uint64(i + 1)
					if id <= cursor {
						continue
					}
					data, err := json.Marshal(muontrap.Progress{Done: i + 1, Total: len(res.Runs), Run: run})
					if err == nil {
						evs = append(evs, streamFrame{id: id, name: "progress", data: data})
					}
				}
			}
		}
		for _, ev := range evs {
			if !write(ev.id, ev.name, ev.data) {
				return
			}
			cursor = ev.id
		}
		if snap.State.Terminal() {
			writeSSE(string(snap.State), snap)
			flusher.Flush()
			return
		}
		flusher.Flush()
		select {
		case <-sub:
		case <-r.Context().Done():
			return
		}
	}
}
