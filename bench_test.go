// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per figure), plus simulator micro-benchmarks.
//
// Each figure benchmark runs the complete (workload × scheme) matrix the
// paper plots and reports the headline geomean(s) as custom metrics, so
// `go test -bench=Fig -benchmem` reproduces the evaluation end to end:
//
//	BenchmarkFig3  — SPEC CPU2006 vs MuonTrap/InvisiSpec/STT   (paper Fig. 3)
//	BenchmarkFig4  — Parsec vs the same schemes                 (paper Fig. 4)
//	BenchmarkFig5  — filter-cache size sweep                    (paper Fig. 5)
//	BenchmarkFig6  — filter-cache associativity sweep           (paper Fig. 6)
//	BenchmarkFig7  — store broadcast-invalidate rate            (paper Fig. 7)
//	BenchmarkFig8  — cumulative mechanisms, Parsec              (paper Fig. 8)
//	BenchmarkFig9  — cumulative mechanisms, SPEC                (paper Fig. 9)
//
// The per-workload rows behind each metric print with -v via b.Log, and
// cmd/figures renders the same tables standalone.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/defense"
	"repro/internal/figures"
	"repro/internal/workload"
	"repro/muontrap"
)

// benchOptions sizes the figure regenerations for the bench harness.
func benchOptions() muontrap.Options {
	opt := muontrap.DefaultOptions()
	opt.Scale = 0.12
	return opt
}

// reportSeries emits each series' geomean as a benchmark metric.
func reportSeries(b *testing.B, id string) {
	b.Helper()
	t, err := muontrap.Figure(id, benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	gm := t.GeomeanRow()
	for i, s := range t.Series {
		b.ReportMetric(gm[i], "geomean-"+s.Name)
	}
	b.Log("\n" + t.String())
}

func BenchmarkFig3SPECComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "fig3")
	}
}

func BenchmarkFig4ParsecComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "fig4")
	}
}

func BenchmarkFig5FilterSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "fig5")
	}
}

func BenchmarkFig6FilterAssocSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "fig6")
	}
}

func BenchmarkFig7StoreBroadcastRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "fig7")
	}
}

func BenchmarkFig8ParsecCumulative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "fig8")
	}
}

func BenchmarkFig9SPECCumulative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "fig9")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: committed
// instructions per wall-clock second on one representative kernel per
// scheme (simulated-instructions/s reported as a custom metric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, scheme := range []string{"insecure", "muontrap", "invisispec-future", "stt-future"} {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				res, err := muontrap.Run(muontrap.Config{
					Workload: "hmmer", Scheme: scheme, Scale: 0.3,
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.Instructions
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}

// BenchmarkParallelCores measures the barrier-parallel in-run core
// scheduler against the sequential one on a 4-core Parsec workload
// (sim-insts/s per worker count). cmd/benchrecord runs the same
// comparison — with a bit-exactness cross-check — and records it in
// BENCH_parallel_cores.json; on hosts with fewer CPUs than workers the
// barrier degrades to cooperative yielding and ~1× is the ceiling.
func BenchmarkParallelCores(b *testing.B) {
	spec, _ := workload.ByName("canneal")
	mo := benchOptions()
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := figures.Options{Scale: mo.Scale, MaxCycles: mo.MaxCycles, CoreParallelism: workers}
			var insts uint64
			for i := 0; i < b.N; i++ {
				res, err := figures.RunOne(context.Background(), spec, defense.MuonTrap(), opt)
				if err != nil {
					b.Fatal(err)
				}
				insts += res.Committed
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}

// BenchmarkAttackSpectre measures one full Spectre attack trial
// (train, fire, switch, probe) on both the vulnerable and defended
// configurations.
func BenchmarkAttackSpectre(b *testing.B) {
	for _, scheme := range []muontrap.Scheme{"insecure", "muontrap"} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := muontrap.Attack(muontrap.AttackSpectre, scheme, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSEUpgrade quantifies the asynchronous SE→E upgrade's
// value (DESIGN.md decision 5): with coherence protections but upgrades
// disabled, every store to a loaded line pays an exclusive upgrade.
func BenchmarkAblationSEUpgrade(b *testing.B) {
	spec, _ := workload.ByName("lbm")
	mo := benchOptions()
	opt := figures.Options{Scale: mo.Scale, MaxCycles: mo.MaxCycles}
	for _, cfg := range []struct {
		name string
		sch  defense.Scheme
	}{
		{"with-se", defense.MuonTrap()},
		{"fcache-no-coherence", defense.FcacheOnly()},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := figures.RunOne(context.Background(), spec, cfg.sch, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "cycles")
			}
		})
	}
}
