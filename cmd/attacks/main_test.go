package main

import (
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/figures"
)

// TestBinaryMatrixMatchesFigures is the e2e smoke: the attacks binary's
// default output must be byte-for-byte the matrix the figures executor
// renders in-process — one renderer, one artifact, no drift between the
// CLI and the pinned golden table.
func TestBinaryMatrixMatchesFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full corpus")
	}
	bin := filepath.Join(t.TempDir(), "attacks")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/attacks").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	stdout, err := exec.Command(bin).Output()
	if err != nil {
		t.Fatalf("attacks: %v", err)
	}

	want, err := figures.SecurityMatrix(context.Background(),
		defense.SecurityComparison(), attack.Scenarios(), figures.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(stdout) != want.Render() {
		t.Fatalf("binary matrix differs from the figures-level matrix:\nbinary:\n%s\nfigures:\n%s",
			stdout, want.Render())
	}

	// Legacy mode still produces the old per-attack listing.
	legacy, err := exec.Command(bin, "-attack", "spectre", "-scheme", "insecure").Output()
	if err != nil {
		t.Fatalf("attacks -legacy: %v", err)
	}
	if !strings.Contains(string(legacy), "spectre") || !strings.Contains(string(legacy), "LEAKED") {
		t.Fatalf("legacy output lost its verdict line:\n%s", legacy)
	}
}
