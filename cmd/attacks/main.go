// Command attacks runs the attack-scenario corpus against the compared
// protection schemes and prints the security matrix: scenario (rows) vs
// scheme (columns), each cell a leak(value,signal) or block(signal)
// verdict. The matrix is rendered by the same code path as the figures
// executor's, so its bytes match the pinned golden artifact.
//
// Usage:
//
//	attacks                          # full security matrix
//	attacks -cache-dir .cache        # matrix with disk-cached cells
//	attacks -legacy                  # old per-attack listing
//	attacks -attack spectre -scheme muontrap -secret 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/muontrap"
)

func main() {
	var (
		name     = flag.String("attack", "", "one attack (implies -legacy; default: all)")
		scheme   = flag.String("scheme", "", "one scheme (legacy mode; default: insecure and muontrap)")
		secret   = flag.Int("secret", 5, "secret value the victim holds (legacy mode)")
		legacy   = flag.Bool("legacy", false, "per-attack listing instead of the matrix")
		cacheDir = flag.String("cache-dir", "", "disk cache directory for matrix cells")
	)
	flag.Parse()

	if *legacy || *name != "" || *scheme != "" {
		runLegacy(*name, *scheme, *secret)
		return
	}

	r := muontrap.NewRunner(muontrap.WithCacheDir(*cacheDir))
	m, err := r.SecurityMatrix(context.Background())
	if err != nil {
		fatal(err)
	}
	fmt.Print(m.Render())
}

// runLegacy preserves the original per-attack output format.
func runLegacy(name, scheme string, secret int) {
	attacks := muontrap.AttackNames()
	if name != "" {
		a, err := muontrap.ParseAttackName(name)
		if err != nil {
			fatal(err)
		}
		attacks = []muontrap.AttackName{a}
	}
	schemes := []muontrap.Scheme{muontrap.SchemeInsecure, "muontrap"}
	if scheme != "" {
		s, err := muontrap.ParseScheme(scheme)
		if err != nil {
			fatal(err)
		}
		schemes = []muontrap.Scheme{s}
	}

	for _, sch := range schemes {
		fmt.Printf("== scheme %s ==\n", sch)
		for _, a := range attacks {
			res, err := muontrap.Attack(a, sch, secret)
			if err != nil {
				fatal(err)
			}
			verdict := "defeated"
			if res.Succeeded {
				verdict = "LEAKED"
			}
			fmt.Printf("%-18s %-9s %v\n", a, verdict, res.Latencies)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
