// Command attacks runs the paper's six speculative side-channel attacks
// under a chosen protection scheme and reports whether each recovers the
// secret.
//
// Usage:
//
//	attacks                      # all six, insecure vs muontrap
//	attacks -scheme fcache       # all six under one scheme
//	attacks -attack spectre -scheme muontrap -secret 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/muontrap"
)

func main() {
	var (
		name   = flag.String("attack", "", "one attack (default: all six)")
		scheme = flag.String("scheme", "", "one scheme (default: insecure and muontrap)")
		secret = flag.Int("secret", 5, "secret value the victim holds")
	)
	flag.Parse()

	attacks := muontrap.AttackNames()
	if *name != "" {
		a, err := muontrap.ParseAttackName(*name)
		if err != nil {
			fatal(err)
		}
		attacks = []muontrap.AttackName{a}
	}
	schemes := []muontrap.Scheme{muontrap.SchemeInsecure, "muontrap"}
	if *scheme != "" {
		s, err := muontrap.ParseScheme(*scheme)
		if err != nil {
			fatal(err)
		}
		schemes = []muontrap.Scheme{s}
	}

	for _, sch := range schemes {
		fmt.Printf("== scheme %s ==\n", sch)
		for _, a := range attacks {
			res, err := muontrap.Attack(a, sch, *secret)
			if err != nil {
				fatal(err)
			}
			verdict := "defeated"
			if res.Succeeded {
				verdict = "LEAKED"
			}
			fmt.Printf("%-18s %-9s %v\n", a, verdict, res.Latencies)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
