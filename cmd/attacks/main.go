// Command attacks runs the paper's six speculative side-channel attacks
// under a chosen protection scheme and reports whether each recovers the
// secret.
//
// Usage:
//
//	attacks                      # all six, insecure vs muontrap
//	attacks -scheme fcache       # all six under one scheme
//	attacks -attack spectre -scheme muontrap -secret 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/muontrap"
)

func main() {
	var (
		name   = flag.String("attack", "", "one attack (default: all six)")
		scheme = flag.String("scheme", "", "one scheme (default: insecure and muontrap)")
		secret = flag.Int("secret", 5, "secret value the victim holds")
	)
	flag.Parse()

	attacks := muontrap.AttackNames()
	if *name != "" {
		attacks = []string{*name}
	}
	schemes := []string{"insecure", "muontrap"}
	if *scheme != "" {
		schemes = []string{*scheme}
	}

	fail := false
	for _, sch := range schemes {
		fmt.Printf("== scheme %s ==\n", sch)
		for _, a := range attacks {
			res, err := muontrap.Attack(a, sch, *secret)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			verdict := "defeated"
			if res.Succeeded {
				verdict = "LEAKED"
			}
			fmt.Printf("%-18s %-9s %v\n", a, verdict, res.Latencies)
			_ = fail
		}
	}
}
