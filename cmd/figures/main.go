// Command figures regenerates the paper's evaluation tables and figures
// (Table 1 and Figures 3-9) as text tables, through the experiment
// service (muontrap.Runner).
//
// Runs are memoized at two levels: in-process (duplicate matrix cells run
// once) and, unless disabled, in a disk cache keyed by the full run
// configuration and the simulator build, so re-running a figure re-emits
// previously computed rows without re-simulating. With -warmup N, each
// workload's warm-up is executed once and every per-scheme run forks from
// the restored snapshot. Ctrl-C cancels in-flight simulations promptly.
//
// Usage:
//
//	figures -exp fig3 -scale 0.15
//	figures -exp all
//	figures -exp fig4 -warmup 50000 -workers 8
//	figures -exp table1
//	figures -cache off -exp fig3     # force fresh simulation
//
// Long runs can checkpoint themselves mid-detailed-simulation: with
// -checkpoint-every N, each run drains to a quiescent boundary every N
// simulated cycles and persists a whole-machine snapshot into the cache
// directory. A killed invocation restarted with the same flags plus
// -resume continues every interrupted run from its latest checkpoint and
// produces a byte-identical results table to an uninterrupted run:
//
//	figures -exp fig4 -checkpoint-every 5000000    # killed mid-run...
//	figures -exp fig4 -checkpoint-every 5000000 -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"repro/muontrap"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1, fig3..fig9, or all")
		scale     = flag.Float64("scale", 0.15, "workload trip-count multiplier")
		warmup    = flag.Int("warmup", 0, "instructions to fast-forward per workload before the measured region (0 = run from reset)")
		cache     = flag.String("cache", "auto", `disk cache directory; "auto" uses the user cache dir, "off" disables`)
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		ckptEvery = flag.Int("checkpoint-every", 0, "drain + snapshot each run every N simulated cycles for crash-resume (0 = off)")
		resume    = flag.Bool("resume", false, "restart interrupted runs from their latest mid-run checkpoint (requires the same -checkpoint-every and cache dir)")
	)
	flag.Parse()
	if *ckptEvery < 0 {
		fmt.Fprintln(os.Stderr, "error: -checkpoint-every must be a positive cycle count (or 0 to disable)")
		os.Exit(1)
	}
	if *resume && *ckptEvery == 0 {
		fmt.Fprintln(os.Stderr, "error: -resume requires -checkpoint-every N (the cadence the interrupted run used)")
		os.Exit(1)
	}

	cacheDir := ""
	switch *cache {
	case "off", "":
	case "auto":
		if dir, err := os.UserCacheDir(); err == nil {
			cacheDir = filepath.Join(dir, "muontrap-figures")
		}
	default:
		cacheDir = *cache
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *resume && cacheDir == "" {
		fmt.Fprintln(os.Stderr, "error: -resume needs a cache directory (-cache) to find checkpoints in")
		os.Exit(1)
	}

	r := muontrap.NewRunner(
		muontrap.WithScale(*scale),
		muontrap.WithWarmup(*warmup),
		muontrap.WithCacheDir(cacheDir),
		muontrap.WithWorkers(*workers),
		muontrap.WithCheckpointEvery(*ckptEvery),
		muontrap.WithResume(*resume),
	)

	run := func(id muontrap.FigureID) {
		start := time.Now()
		t, err := r.Figure(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s regenerated in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	switch *exp {
	case "table1":
		fmt.Print(muontrap.TableOne())
	case "all":
		fmt.Print(muontrap.TableOne())
		fmt.Println()
		for _, id := range muontrap.FigureIDs() {
			run(id)
		}
	default:
		id, err := muontrap.ParseFigureID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		run(id)
	}
}
