// Command figures regenerates the paper's evaluation tables and figures
// (Table 1 and Figures 3-9) as text tables.
//
// Usage:
//
//	figures -exp fig3 -scale 0.15
//	figures -exp all
//	figures -exp table1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/muontrap"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table1, fig3..fig9, or all")
		scale = flag.Float64("scale", 0.15, "workload trip-count multiplier")
	)
	flag.Parse()

	opt := muontrap.DefaultOptions()
	opt.Scale = *scale

	run := func(id string) {
		start := time.Now()
		t, err := muontrap.Figure(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s regenerated in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	switch *exp {
	case "table1":
		fmt.Print(muontrap.TableOne())
	case "all":
		fmt.Print(muontrap.TableOne())
		fmt.Println()
		for _, id := range muontrap.FigureIDs() {
			run(id)
		}
	default:
		run(*exp)
	}
}
