// Command benchrecord measures the barrier-parallel in-run core
// scheduler against the sequential one and records the result as a
// committed JSON artifact (BENCH_parallel_cores.json at the repo root),
// so wall-time claims in PERF.md are reproducible: re-run the command on
// any machine and diff the output.
//
// For each (workload, worker-count) cell it times fresh uncached
// figures.RunOne invocations, cross-checks that every parallel run is
// bit-identical to the sequential golden of the same cell (the tool
// refuses to record numbers for a broken scheduler), and reports
// simulated instructions per host second plus the parallel:sequential
// wall-time speedup.
//
// Usage:
//
//	benchrecord                                  # Parsec × muontrap, workers 1,2,4
//	benchrecord -workloads canneal,ferret -workers 1,4 -repeats 3
//	benchrecord -o BENCH_parallel_cores.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/defense"
	"repro/internal/figures"
	"repro/internal/workload"
)

// Row is one measured (workload, scheme, workers) cell.
type Row struct {
	Workload    string  `json:"workload"`
	Scheme      string  `json:"scheme"`
	Workers     int     `json:"workers"`
	Cycles      uint64  `json:"cycles"`
	Insts       uint64  `json:"insts"`
	WallSecs    float64 `json:"wall_secs"`
	InstsPerSec float64 `json:"insts_per_sec"`
	// Speedup is the sequential cell's wall time divided by this cell's
	// (1.0 for the sequential cell itself).
	Speedup float64 `json:"speedup"`
}

// Report is the committed artifact.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	Repeats    int     `json:"repeats"`
	Note       string  `json:"note"`
	Rows       []Row   `json:"rows"`
}

func main() {
	var (
		workloads = flag.String("workloads", "blackscholes,canneal,ferret,streamcluster", "comma-separated workload names")
		scheme    = flag.String("scheme", "muontrap", "defense scheme")
		workers   = flag.String("workers", "1,2,4", "comma-separated in-run core worker counts (must start with 1)")
		scale     = flag.Float64("scale", 0.15, "workload scale factor")
		repeats   = flag.Int("repeats", 3, "timed repetitions per cell (best wall time kept)")
		out       = flag.String("o", "", "write JSON report to this file (default stdout)")
	)
	flag.Parse()

	sch, err := defense.ByName(*scheme)
	if err != nil {
		fatal(err)
	}
	var counts []int
	for _, f := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -workers entry %q", f))
		}
		counts = append(counts, n)
	}
	if counts[0] != 1 {
		fatal(fmt.Errorf("-workers must start with 1 (the sequential golden)"))
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		Repeats:    *repeats,
		Note: "Best of -repeats fresh uncached runs per cell; parallel cells " +
			"verified bit-identical to the sequential golden before recording. " +
			"Speedup is sequential_wall/this_wall; on hosts with fewer CPUs than " +
			"workers the barrier scheduler degrades to cooperative yielding and " +
			"speedup ~1 is the expected ceiling.",
	}

	opt := figures.DefaultOptions()
	opt.Scale = *scale
	for _, name := range strings.Split(*workloads, ",") {
		spec, ok := workload.ByName(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", name))
		}
		var seqWall float64
		var goldenCycles, goldenInsts uint64
		var goldenCounters map[string]uint64
		for _, w := range counts {
			o := opt
			o.CoreParallelism = w
			row := Row{Workload: spec.Name, Scheme: sch.Name, Workers: w}
			for r := 0; r < *repeats; r++ {
				start := time.Now()
				res, err := figures.RunOne(context.Background(), spec, sch, o)
				wall := time.Since(start).Seconds()
				if err != nil {
					fatal(fmt.Errorf("%s workers=%d: %w", spec.Name, w, err))
				}
				if goldenCounters == nil {
					goldenCycles, goldenInsts = uint64(res.Cycles), res.Committed
					goldenCounters = res.Counters
				} else if uint64(res.Cycles) != goldenCycles || res.Committed != goldenInsts ||
					!reflect.DeepEqual(res.Counters, goldenCounters) {
					fatal(fmt.Errorf("%s workers=%d repeat %d: result differs from sequential golden — refusing to record",
						spec.Name, w, r))
				}
				if r == 0 || wall < row.WallSecs {
					row.WallSecs = wall
				}
			}
			row.Cycles, row.Insts = goldenCycles, goldenInsts
			row.InstsPerSec = float64(row.Insts) / row.WallSecs
			if w == 1 {
				seqWall = row.WallSecs
				row.Speedup = 1
			} else {
				row.Speedup = seqWall / row.WallSecs
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Fprintf(os.Stderr, "%-14s %s workers=%d: %.3fs, %.0f insts/s, speedup %.2fx\n",
				row.Workload, row.Scheme, row.Workers, row.WallSecs, row.InstsPerSec, row.Speedup)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrecord:", err)
	os.Exit(1)
}
