// Command muontrapd serves the MuonTrap experiment service over HTTP:
// declarative sweep submission, per-cell progress streaming over SSE,
// cancellation, content-keyed result fetch, and crash-resume of
// interrupted jobs from their latest mid-run checkpoint. The wire format
// is documented in docs/API.md; muontrap/client is the Go client.
//
// Usage:
//
//	muontrapd -addr :7077
//	muontrapd -addr :7077 -checkpoint-every 5000000 -auto-resume
//	muontrapd -cache /shared/muontrap -workers 8 -max-jobs 2
//	muontrapd -tenants tenants.json -max-queue 64 -drain-timeout 30s
//	muontrapd -coordinator -addr :7070 -checkpoint-every 5000000
//	muontrapd -join http://coord:7070 -advertise http://me:7077 -checkpoint-every 5000000
//
// With -coordinator, the process serves no simulations itself: it shards
// each submitted sweep across the workers that -join it (same /v1/jobs
// API, so clients need not care which kind of process they talk to),
// re-dispatches cells from dead workers using their mirrored mid-run
// checkpoints, and steals cells from stragglers (-steal-after). A worker
// given -join registers with the coordinator, heartbeats, and mirrors
// its mid-run checkpoints into the coordinator's content store so any
// other machine can pick up its interrupted cells. The identity flags
// (-scale, -max-cycles, -warmup, -checkpoint-every) must match across
// the coordinator and every worker.
//
// With -tenants (a JSON array of {name, key, max_queued, max_running}),
// the daemon requires an API key on every endpoint except /v1/healthz
// and enforces per-tenant quotas; over-quota or over-capacity
// submissions are shed with 429/503 + Retry-After instead of queueing
// unboundedly. Interactive-priority jobs preempt running bulk sweeps
// (losslessly, via checkpoints) when every runner slot is busy.
//
// With a cache directory (the default uses the user cache dir), results
// are content-keyed on disk — resubmitting an identical sweep against
// the same simulator binary is answered without simulating — and the job
// journal survives restarts: jobs the previous daemon left unfinished
// surface as "interrupted". With -checkpoint-every N, their runs also
// persist mid-run checkpoints, so resuming (POST /v1/jobs/{id}/resume,
// or automatically with -auto-resume) restores each unfinished cell from
// its latest checkpoint instead of simulating from cold.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":7077", "listen address")
		cache      = flag.String("cache", "auto", `service/cache root directory; "auto" uses the user cache dir, "off" disables persistence (no restart-resume)`)
		workers    = flag.Int("workers", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
		maxJobs    = flag.Int("max-jobs", 1, "concurrently executing sweeps; further submissions queue")
		scale      = flag.Float64("scale", 0, "default workload trip-count multiplier for sweeps that omit scales (0 = library default)")
		maxCycles  = flag.Int("max-cycles", 0, "default per-run cycle bound (0 = library default)")
		warmup     = flag.Int("warmup", 0, "instructions to fast-forward per workload before the measured region")
		ckptEvery  = flag.Int("checkpoint-every", 0, "drain + snapshot each run every N simulated cycles for crash-resume (0 = off)")
		autoResume = flag.Bool("auto-resume", false, "on startup, re-queue every interrupted journaled job with checkpoint resume")

		maxQueue     = flag.Int("max-queue", 0, "jobs waiting for a runner slot before submissions are shed with 503 (0 = unbounded)")
		tenantsFile  = flag.String("tenants", "", "JSON tenants file enabling API-key auth and per-tenant quotas (empty = open daemon)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed (429/503) responses")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "bound on graceful-shutdown job drain; on expiry still-running jobs are journaled interrupted and abandoned (0 = wait forever)")

		metricsOn = flag.Bool("metrics", false, "expose Prometheus metrics at /metrics and enable job/cell tracing and sim profiling")
		traceDir  = flag.String("trace-dir", "", `job/cell trace JSONL directory (default "<cache>/telemetry" with -metrics; "off" keeps the in-memory ring only)`)

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator: shard submitted sweeps across joined workers instead of simulating locally")
		hbTimeout   = flag.Duration("heartbeat-timeout", 5*time.Second, "coordinator: mark a worker dead after this long without a heartbeat")
		stealAfter  = flag.Duration("steal-after", 0, "coordinator: speculatively re-dispatch a cell stuck on one worker for this long (0 = no stealing)")
		perWorker   = flag.Int("per-worker", 1, "coordinator: concurrently dispatched cells per worker")
		join        = flag.String("join", "", "worker: coordinator base URL to register with (e.g. http://coord:7070)")
		advertise   = flag.String("advertise", "", "worker: base URL the coordinator reaches this daemon at (required with -join)")
		hbInterval  = flag.Duration("heartbeat-interval", time.Second, "worker: heartbeat cadence")
	)
	flag.Parse()
	if *ckptEvery < 0 {
		fatal(errors.New("-checkpoint-every must be a positive cycle count (or 0 to disable)"))
	}
	var tenants []service.Tenant
	if *tenantsFile != "" {
		var err error
		if tenants, err = service.LoadTenants(*tenantsFile); err != nil {
			fatal(err)
		}
	}

	dir := ""
	switch *cache {
	case "off", "":
	case "auto":
		if base, err := os.UserCacheDir(); err == nil {
			dir = filepath.Join(base, "muontrapd")
		}
	default:
		dir = *cache
	}
	if *autoResume && dir == "" {
		fatal(errors.New("-auto-resume needs a cache directory (-cache) holding the journal and checkpoints"))
	}

	// Telemetry is strictly opt-in: without -metrics (or -trace-dir) the
	// daemon runs the exact pre-telemetry code paths — no registry, no
	// tracer, no sim profiling hooks installed.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if *metricsOn || *traceDir != "" {
		if *metricsOn {
			reg = telemetry.NewRegistry()
			telemetry.EnableSimProfiling(reg)
		}
		td := *traceDir
		if td == "" && dir != "" {
			td = filepath.Join(dir, "telemetry")
		}
		if td == "off" {
			td = "" // ring-buffer tracing only, no JSONL file
		}
		var err error
		if tracer, err = telemetry.NewTracer(td); err != nil {
			fatal(err)
		}
		defer tracer.Close()
	}

	if *coordinator {
		if *join != "" {
			fatal(errors.New("-coordinator and -join are mutually exclusive: a process shards sweeps or runs them, not both"))
		}
		runCoordinator(*addr, fleet.Config{
			Dir:              dir,
			Scale:            *scale,
			MaxCycles:        *maxCycles,
			Warmup:           *warmup,
			CheckpointEvery:  *ckptEvery,
			HeartbeatTimeout: *hbTimeout,
			StealAfter:       *stealAfter,
			PerWorker:        *perWorker,
			Metrics:          reg,
			Tracer:           tracer,
		})
		return
	}

	// A fleet worker mirrors its mid-run checkpoints into the
	// coordinator's content store so any other machine can resume its
	// interrupted cells; the local half (when a cache directory exists)
	// keeps single-machine restart-resume working too.
	var snapStore checkpoint.ContentStore
	if *join != "" {
		if *advertise == "" {
			fatal(errors.New("-join needs -advertise: the base URL the coordinator reaches this daemon at"))
		}
		remote := checkpoint.NewHTTPStore(strings.TrimRight(*join, "/")+fleet.StorePath, nil)
		if dir != "" {
			local, err := checkpoint.NewStore(filepath.Join(dir, "snapshots"))
			if err != nil {
				fatal(err)
			}
			snapStore = &checkpoint.Mirror{Local: local, Remote: remote}
		} else {
			snapStore = remote
		}
	}

	srv, err := service.New(service.Config{
		Dir:             dir,
		Workers:         *workers,
		MaxJobs:         *maxJobs,
		MaxQueue:        *maxQueue,
		Tenants:         tenants,
		RetryAfter:      *retryAfter,
		Scale:           *scale,
		MaxCycles:       *maxCycles,
		Warmup:          *warmup,
		CheckpointEvery: *ckptEvery,
		SnapStore:       snapStore,
		Metrics:         reg,
		Tracer:          tracer,
	})
	if err != nil {
		fatal(err)
	}

	if interrupted := srv.InterruptedJobs(); len(interrupted) > 0 {
		fmt.Printf("muontrapd: %d interrupted job(s) in journal\n", len(interrupted))
		if *autoResume {
			for _, id := range interrupted {
				if _, err := srv.ResumeJob(id); err != nil {
					fmt.Fprintf(os.Stderr, "muontrapd: resuming %s: %v\n", id, err)
				} else {
					fmt.Printf("muontrapd: resumed %s\n", id)
				}
			}
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads the tenants table: keys rotate and quotas change
	// without dropping running jobs or open streams. A reload that fails to
	// parse or validate keeps the old table — a typo in tenants.json must
	// never fail open (or closed) a live daemon.
	if *tenantsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := srv.ReloadTenantsFile(*tenantsFile); err != nil {
					fmt.Fprintf(os.Stderr, "muontrapd: SIGHUP tenant reload failed, keeping previous table: %v\n", err)
				} else {
					fmt.Printf("muontrapd: SIGHUP reloaded tenants from %s\n", *tenantsFile)
				}
			}
		}()
	}

	// Register with the coordinator once we are (about to be) listening.
	// Registration is retried until it lands: the coordinator may come up
	// after its workers, and a worker that outlives a coordinator restart
	// re-registers from inside the agent's heartbeat loop.
	if *join != "" {
		name, _ := os.Hostname()
		if name == "" {
			name = "worker"
		}
		go func() {
			for {
				agent, err := fleet.StartAgent(fleet.AgentConfig{
					Coordinator: *join,
					Name:        name,
					BaseURL:     *advertise,
					Interval:    *hbInterval,
				})
				if err == nil {
					fmt.Printf("muontrapd: joined fleet at %s as %s\n", *join, agent.WorkerID())
					<-ctx.Done()
					agent.Close()
					return
				}
				fmt.Fprintf(os.Stderr, "muontrapd: %v (retrying)\n", err)
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Second):
				}
			}
		}()
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		// Stop accepting, then abort in-flight jobs. Their journal entries
		// keep the running state, so the next daemon sees them as
		// interrupted and can resume them from their checkpoints.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		// Bound the job drain: cancelled simulations normally unwind
		// within one context-poll interval, but a wedged run must not
		// keep the process alive forever. On expiry the stragglers are
		// journaled as interrupted — still resumable by the next daemon —
		// and named here so the abandonment is visible in the logs.
		drainCtx := context.Background()
		if *drainTimeout > 0 {
			var cancelDrain context.CancelFunc
			drainCtx, cancelDrain = context.WithTimeout(drainCtx, *drainTimeout)
			defer cancelDrain()
		}
		if abandoned := srv.Shutdown(drainCtx); len(abandoned) > 0 {
			fmt.Fprintf(os.Stderr, "muontrapd: drain timeout (%s) expired; abandoned %d running job(s) as interrupted: %s\n",
				*drainTimeout, len(abandoned), strings.Join(abandoned, ", "))
		}
	}()

	fmt.Printf("muontrapd: listening on %s", *addr)
	if dir != "" {
		fmt.Printf(" (cache %s)", dir)
	}
	fmt.Println()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	// ListenAndServe returns ErrServerClosed as soon as Shutdown begins;
	// wait for the connection drain and job unwind to finish rather than
	// exiting from under them (which would be a kill, not a shutdown).
	<-shutdownDone
}

// runCoordinator serves the fleet coordinator until interrupted. Its
// shutdown needs no job drain: the shard-map journal is written at every
// merge, so killing the process at any instant leaves a resumable map —
// coordinator crash-resume is a first-class path, not an afterthought.
func runCoordinator(addr string, cfg fleet.Config) {
	co, err := fleet.New(cfg)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: addr, Handler: co}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		co.Close()
	}()
	fmt.Printf("muontrapd: coordinating fleet on %s", addr)
	if cfg.Dir != "" {
		fmt.Printf(" (state %s)", cfg.Dir)
	}
	fmt.Println()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-shutdownDone
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
