// Command muontrap runs one benchmark kernel under one protection scheme
// and prints timing plus microarchitectural statistics.
//
// Usage:
//
//	muontrap -workload povray -scheme muontrap -scale 0.2
//	muontrap -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"repro/muontrap"
)

func main() {
	var (
		work  = flag.String("workload", "povray", "benchmark name (see -list)")
		sch   = flag.String("scheme", "muontrap", "protection scheme (see -list)")
		scale = flag.Float64("scale", 0.15, "workload trip-count multiplier")
		list  = flag.Bool("list", false, "list workloads and schemes, then exit")
		all   = flag.Bool("counters", false, "dump every statistic counter")
	)
	flag.Parse()

	if *list {
		// Workloads() and Schemes() are sorted and deduplicated, so this
		// help text is deterministic.
		fmt.Println("workloads:")
		for _, w := range muontrap.Workloads() {
			fmt.Printf("  %s\n", w)
		}
		fmt.Println("schemes:")
		desc := muontrap.SchemeDescriptions()
		for _, s := range muontrap.Schemes() {
			fmt.Printf("  %-20s %s\n", s, desc[s])
		}
		return
	}

	workload, err := muontrap.ParseWorkload(*work)
	if err != nil {
		fatal(err)
	}
	scheme, err := muontrap.ParseScheme(*sch)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the simulation mid-run instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := muontrap.NewRunner()
	res, err := r.Run(ctx, muontrap.RunSpec{Workload: workload, Scheme: scheme, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload      %s\n", res.Workload)
	fmt.Printf("scheme        %s\n", res.Scheme)
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("IPC           %.3f\n", res.IPC())
	if *all {
		keys := make([]string, 0, len(res.Counters))
		for k := range res.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-40s %12d\n", k, res.Counters[k])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
