// Command muontrap runs one benchmark kernel under one protection scheme
// and prints timing plus microarchitectural statistics.
//
// Usage:
//
//	muontrap -workload povray -scheme muontrap -scale 0.2
//	muontrap -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/muontrap"
)

func main() {
	var (
		work  = flag.String("workload", "povray", "benchmark name (see -list)")
		sch   = flag.String("scheme", "muontrap", "protection scheme (see -list)")
		scale = flag.Float64("scale", 0.15, "workload trip-count multiplier")
		list  = flag.Bool("list", false, "list workloads and schemes, then exit")
		all   = flag.Bool("counters", false, "dump every statistic counter")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range muontrap.Workloads() {
			fmt.Printf("  %s\n", w)
		}
		fmt.Println("schemes:")
		desc := muontrap.SchemeDescriptions()
		for _, s := range muontrap.Schemes() {
			fmt.Printf("  %-20s %s\n", s, desc[s])
		}
		return
	}

	res, err := muontrap.Run(muontrap.Config{Workload: *work, Scheme: *sch, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("workload      %s\n", *work)
	fmt.Printf("scheme        %s\n", *sch)
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("IPC           %.3f\n", res.IPC())
	if *all {
		keys := make([]string, 0, len(res.Counters))
		for k := range res.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-40s %12d\n", k, res.Counters[k])
		}
	}
}
