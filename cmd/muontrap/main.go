// Command muontrap runs one benchmark kernel under one protection scheme
// and prints timing plus microarchitectural statistics. With -server it
// executes the run remotely on a muontrapd experiment daemon instead of
// simulating in-process (see docs/API.md).
//
// Usage:
//
//	muontrap -workload povray -scheme muontrap -scale 0.2
//	muontrap -workload canneal -server http://localhost:7077
//	muontrap -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"repro/muontrap"
	"repro/muontrap/client"
)

func main() {
	var (
		work   = flag.String("workload", "povray", "benchmark name (see -list)")
		sch    = flag.String("scheme", "muontrap", "protection scheme (see -list)")
		scale  = flag.Float64("scale", 0.15, "workload trip-count multiplier")
		list   = flag.Bool("list", false, "list workloads and schemes, then exit")
		all    = flag.Bool("counters", false, "dump every statistic counter")
		server = flag.String("server", "", "muontrapd base URL; run remotely instead of simulating in-process")
	)
	flag.Parse()

	if *list {
		// Workloads() and Schemes() are sorted and deduplicated, so this
		// help text is deterministic.
		fmt.Println("workloads:")
		for _, w := range muontrap.Workloads() {
			fmt.Printf("  %s\n", w)
		}
		fmt.Println("schemes:")
		desc := muontrap.SchemeDescriptions()
		for _, s := range muontrap.Schemes() {
			fmt.Printf("  %-20s %s\n", s, desc[s])
		}
		return
	}

	workload, err := muontrap.ParseWorkload(*work)
	if err != nil {
		fatal(err)
	}
	scheme, err := muontrap.ParseScheme(*sch)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the simulation mid-run instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var res muontrap.RunResult
	if *server != "" {
		// Remote execution: a single run is a 1×1 sweep on the daemon.
		// (Sweeps memoize; rerun with a fresh daemon cache to re-simulate.)
		c := client.New(*server)
		job, err := c.Submit(ctx, muontrap.Sweep{
			Workloads: []muontrap.Workload{workload},
			Schemes:   []muontrap.Scheme{scheme},
			Scales:    []float64{*scale},
		})
		if err != nil {
			fatal(err)
		}
		final, err := c.Stream(ctx, job.ID, nil)
		if err != nil {
			if ctx.Err() != nil {
				// Mirror the local Ctrl-C semantics: abandoning the stream
				// must not leave the daemon simulating on our behalf.
				_, _ = c.Cancel(context.Background(), job.ID)
				fatal(ctx.Err())
			}
			fatal(err)
		}
		if final.State != muontrap.JobDone {
			fatal(fmt.Errorf("remote job %s ended %s: %s", final.ID, final.State, final.Error))
		}
		sr, err := c.Result(ctx, job.ID)
		if err != nil {
			fatal(err)
		}
		if len(sr.Runs) == 0 {
			fatal(fmt.Errorf("daemon returned an empty result for job %s", job.ID))
		}
		res = sr.Runs[0]
	} else {
		r := muontrap.NewRunner()
		var err error
		res, err = r.Run(ctx, muontrap.RunSpec{Workload: workload, Scheme: scheme, Scale: *scale})
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("workload      %s\n", res.Workload)
	fmt.Printf("scheme        %s\n", res.Scheme)
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("IPC           %.3f\n", res.IPC())
	if *all {
		keys := make([]string, 0, len(res.Counters))
		for k := range res.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-40s %12d\n", k, res.Counters[k])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
